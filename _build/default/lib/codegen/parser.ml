(** Parser for the text tensor-program format produced by
    {!Export.to_text} / {!Export.to_text_with_schedule}: the persistence
    layer for optimized graphs (round-trip property: parse ∘ print = id up
    to node renumbering).

    Grammar, one node per line:
    [%<id> = <op-name> <dtype>[d0,d1,...] (<comma-separated input ids>) "label"]
    with an optional leading [# schedule: i j k ...] comment. *)

open Magis_ir

let fail fmt = Printf.ksprintf (fun s -> Error s) fmt

let parse_dtype = function
  | "f32" -> Ok Shape.F32
  | "tf32" -> Ok Shape.TF32
  | "bf16" -> Ok Shape.BF16
  | "f16" -> Ok Shape.F16
  | "i64" -> Ok Shape.I64
  | "i32" -> Ok Shape.I32
  | "bool" -> Ok Shape.Bool
  | other -> fail "unknown dtype %s" other

(** Parse ["tf32[2,3,4]"]. *)
let parse_shape (s : string) : (Shape.t, string) result =
  match String.index_opt s '[' with
  | None -> fail "malformed shape %s" s
  | Some i ->
      let dt = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 2) in
      (match parse_dtype dt with
      | Error e -> Error e
      | Ok dtype -> (
          try
            Ok
              (Shape.create ~dtype
                 (List.map int_of_string (String.split_on_char ',' rest)))
          with _ -> fail "malformed dims in %s" s))

let int_list_of s =
  match String.trim s with
  | "" -> []
  | t -> List.map (fun x -> int_of_string (String.trim x)) (String.split_on_char ',' t)

(** Inverse of {!Op.name} for the operator vocabulary the exporter
    produces.  Attribute-bearing names are parsed back structurally. *)
let parse_op (name : string) (shape : Shape.t) : (Op.kind, string) result =
  let starts p = String.length name >= String.length p
                 && String.sub name 0 (String.length p) = p in
  let args_of prefix =
    (* "op(1,2,3)" -> [1;2;3] *)
    let inner =
      String.sub name (String.length prefix + 1)
        (String.length name - String.length prefix - 2)
    in
    int_list_of inner
  in
  match name with
  | "placeholder" -> Ok (Op.Input Op.Placeholder)
  | "weight" -> Ok (Op.Input Op.Weight)
  | "label" -> Ok (Op.Input Op.Label)
  | "matmul" -> Ok (Op.Matmul { trans_a = false; trans_b = false })
  | "matmul_ta" -> Ok (Op.Matmul { trans_a = true; trans_b = false })
  | "matmul_tb" -> Ok (Op.Matmul { trans_a = false; trans_b = true })
  | "matmul_ta_tb" -> Ok (Op.Matmul { trans_a = true; trans_b = true })
  | "dense" -> Ok (Op.Dense { trans_w = false })
  | "dense_tw" -> Ok (Op.Dense { trans_w = true })
  | "dense_bwd_weight" -> Ok Op.Dense_bwd_weight
  | "bmm" -> Ok (Op.Batch_matmul { trans_a = false; trans_b = false })
  | "bmm_ta" -> Ok (Op.Batch_matmul { trans_a = true; trans_b = false })
  | "bmm_tb" -> Ok (Op.Batch_matmul { trans_a = false; trans_b = true })
  | "bmm_ta_tb" -> Ok (Op.Batch_matmul { trans_a = true; trans_b = true })
  | "relu" -> Ok (Op.Unary Op.Relu)
  | "gelu" -> Ok (Op.Unary Op.Gelu)
  | "tanh" -> Ok (Op.Unary Op.Tanh)
  | "sigmoid" -> Ok (Op.Unary Op.Sigmoid)
  | "exp" -> Ok (Op.Unary Op.Exp)
  | "sqrt" -> Ok (Op.Unary Op.Sqrt)
  | "neg" -> Ok (Op.Unary Op.Neg)
  | "identity" -> Ok (Op.Unary Op.Identity)
  | "dropout" -> Ok (Op.Unary Op.Dropout)
  | "add" -> Ok (Op.Binary Op.Add)
  | "sub" -> Ok (Op.Binary Op.Sub)
  | "mul" -> Ok (Op.Binary Op.Mul)
  | "div" -> Ok (Op.Binary Op.Div)
  | "max" -> Ok (Op.Binary Op.Max)
  | "batch_norm" -> Ok Op.Batch_norm
  | "embedding" -> Ok Op.Embedding
  | "embedding_bwd" -> Ok Op.Embedding_bwd
  | "store" -> Ok Op.Store
  | "load" -> Ok Op.Load
  | _ when starts "scale(" ->
      let inner = String.sub name 6 (String.length name - 7) in
      (try Ok (Op.Unary (Op.Scale (float_of_string inner)))
       with _ -> fail "bad scale %s" name)
  | _ when starts "conv2d(" -> (
      match
        String.sub name 7 (String.length name - 8) |> String.split_on_char ','
      with
      | [ s; p ] ->
          Ok
            (Op.Conv2d
               { stride = int_of_string (String.sub s 1 (String.length s - 1));
                 padding = int_of_string (String.sub p 1 (String.length p - 1)) })
      | _ -> fail "bad conv attrs %s" name)
  | _ when starts "conv2d_bwd_data(" -> (
      match
        String.sub name 16 (String.length name - 17) |> String.split_on_char ','
      with
      | [ s; p ] ->
          Ok
            (Op.Conv2d_bwd_data
               { stride = int_of_string (String.sub s 1 (String.length s - 1));
                 padding = int_of_string (String.sub p 1 (String.length p - 1)) })
      | _ -> fail "bad conv attrs %s" name)
  | _ when starts "conv2d_bwd_weight(" -> (
      match
        String.sub name 18 (String.length name - 19) |> String.split_on_char ','
      with
      | [ s; p ] ->
          Ok
            (Op.Conv2d_bwd_weight
               { stride = int_of_string (String.sub s 1 (String.length s - 1));
                 padding = int_of_string (String.sub p 1 (String.length p - 1)) })
      | _ -> fail "bad conv attrs %s" name)
  | _ when starts "maxpool2d(" || starts "avgpool2d(" -> (
      let kind = if starts "maxpool2d(" then Op.P_max else Op.P_avg in
      match
        String.sub name 10 (String.length name - 11) |> String.split_on_char ','
      with
      | [ k; s ] ->
          Ok
            (Op.Pool2d
               { p_kind = kind;
                 kernel = int_of_string (String.sub k 1 (String.length k - 1));
                 p_stride = int_of_string (String.sub s 1 (String.length s - 1)) })
      | _ -> fail "bad pool attrs %s" name)
  | _ when starts "pool2d_bwd(" -> (
      match
        String.sub name 11 (String.length name - 12) |> String.split_on_char ','
      with
      | [ k; s ] ->
          Ok
            (Op.Pool2d_bwd
               { p_kind = Op.P_max;
                 kernel = int_of_string (String.sub k 1 (String.length k - 1));
                 p_stride = int_of_string (String.sub s 1 (String.length s - 1)) })
      | _ -> fail "bad pool attrs %s" name)
  | _ when starts "bias_add(" ->
      Ok (Op.Bias_add (List.hd (args_of "bias_add")))
  | _ when starts "softmax_bwd(" ->
      Ok (Op.Softmax_bwd (List.hd (args_of "softmax_bwd")))
  | _ when starts "softmax(" -> Ok (Op.Softmax (List.hd (args_of "softmax")))
  | _ when starts "layer_norm_bwd(" ->
      Ok (Op.Layer_norm_bwd (List.hd (args_of "layer_norm_bwd")))
  | _ when starts "layer_norm(" ->
      Ok (Op.Layer_norm (List.hd (args_of "layer_norm")))
  | _ when starts "reduce_sum(" ->
      Ok (Op.Reduce (Op.R_sum, args_of "reduce_sum"))
  | _ when starts "reduce_mean(" ->
      Ok (Op.Reduce (Op.R_mean, args_of "reduce_mean"))
  | _ when starts "reduce_max(" ->
      Ok (Op.Reduce (Op.R_max, args_of "reduce_max"))
  | _ when starts "broadcast(" ->
      Ok (Op.Broadcast { dims = Shape.dims shape; axes = args_of "broadcast" })
  | _ when starts "transpose(" ->
      Ok (Op.Transpose (Array.of_list (args_of "transpose")))
  | _ when starts "reshape(" ->
      Ok (Op.Reshape (Array.of_list (args_of "reshape")))
  | _ when starts "slice(" -> (
      (* slice(axis,lo:hi) *)
      let inner = String.sub name 6 (String.length name - 7) in
      match String.split_on_char ',' inner with
      | [ a; range ] -> (
          match String.split_on_char ':' range with
          | [ lo; hi ] ->
              Ok
                (Op.Slice
                   { axis = int_of_string a; lo = int_of_string lo;
                     hi = int_of_string hi })
          | _ -> fail "bad slice range %s" name)
      | _ -> fail "bad slice %s" name)
  | _ when starts "concat(" -> Ok (Op.Concat (List.hd (args_of "concat")))
  | other -> fail "unknown operator %s" other

type program = {
  graph : Graph.t;
  id_map : (int, int) Hashtbl.t;  (** original id -> new id *)
  schedule : int list option;  (** remapped, when the header was present *)
}

(** Parse a program; node ids are remapped to fresh ids (insertion
    order follows the file, which {!Export.to_text} writes topologically). *)
let parse (text : string) : (program, string) result =
  let id_map = Hashtbl.create 64 in
  let graph = ref Graph.empty in
  let schedule = ref None in
  let exception Fail of string in
  try
    String.split_on_char '\n' text
    |> List.iteri (fun lineno line ->
           let line = String.trim line in
           if line = "" then ()
           else if String.length line > 12 && String.sub line 0 12 = "# schedule: "
           then
             schedule :=
               Some
                 (String.sub line 12 (String.length line - 12)
                 |> String.split_on_char ' '
                 |> List.filter (( <> ) "")
                 |> List.map int_of_string)
           else if line.[0] = '#' then ()
           else
             (* %id = op shape (inputs) "label" *)
             match String.index_opt line '=' with
             | None -> raise (Fail (Printf.sprintf "line %d: no '='" lineno))
             | Some eq ->
                 let id =
                   int_of_string
                     (String.trim (String.sub line 1 (eq - 1)))
                 in
                 let rest = String.trim (String.sub line (eq + 1) (String.length line - eq - 1)) in
                 (* split: op-name, shape, (inputs), "label" *)
                 let lparen = String.rindex rest '(' in
                 let rparen = String.index_from rest lparen ')' in
                 let head = String.trim (String.sub rest 0 lparen) in
                 let inputs_s = String.sub rest (lparen + 1) (rparen - lparen - 1) in
                 let label_part = String.trim (String.sub rest (rparen + 1) (String.length rest - rparen - 1)) in
                 let label =
                   if String.length label_part >= 2 then
                     Scanf.sscanf label_part "%S" Fun.id
                   else ""
                 in
                 let op_name, shape_s =
                   match String.rindex_opt head ' ' with
                   | Some sp ->
                       ( String.sub head 0 sp,
                         String.sub head (sp + 1) (String.length head - sp - 1) )
                   | None -> raise (Fail (Printf.sprintf "line %d: no shape" lineno))
                 in
                 let shape =
                   match parse_shape shape_s with
                   | Ok s -> s
                   | Error e -> raise (Fail (Printf.sprintf "line %d: %s" lineno e))
                 in
                 let op =
                   match parse_op op_name shape with
                   | Ok o -> o
                   | Error e -> raise (Fail (Printf.sprintf "line %d: %s" lineno e))
                 in
                 let inputs =
                   List.map
                     (fun old ->
                       match Hashtbl.find_opt id_map old with
                       | Some v -> v
                       | None ->
                           raise
                             (Fail
                                (Printf.sprintf "line %d: unknown input %%%d"
                                   lineno old)))
                     (int_list_of inputs_s)
                 in
                 let g', new_id =
                   match op with
                   | Op.Input kind -> Graph.add_input ~label !graph kind shape
                   | _ -> Graph.add ~label !graph op inputs
                 in
                 if not (Shape.equal_dims (Graph.shape g' new_id) shape) then
                   raise
                     (Fail
                        (Printf.sprintf
                           "line %d: inferred shape %s disagrees with %s"
                           lineno
                           (Shape.to_string (Graph.shape g' new_id))
                           (Shape.to_string shape)));
                 graph := g';
                 Hashtbl.replace id_map id new_id);
    let schedule =
      Option.map
        (List.filter_map (fun old -> Hashtbl.find_opt id_map old))
        !schedule
    in
    Ok { graph = !graph; id_map; schedule }
  with
  | Fail msg -> Error msg
  | Failure msg -> Error msg
  | Scanf.Scan_failure msg -> Error msg
