(** PyTorch code generation (§7.1 of the paper: "a code generation backend
    to generate Python code calling PyTorch APIs based on the graph and
    schedule; PyTorch's CUDA Stream API implements asynchronous Store and
    Load").

    [emit g ~schedule] produces a self-contained Python module with a
    [run(inputs)] function that executes the operators in schedule order:

    - tensors are freed (dropped from the environment) right after their
      last consumer, reproducing the basic memory saving of the baseline;
    - [Store] copies a tensor to pinned host memory on a side stream and
      drops the device copy; [Load] copies it back, waiting on the copy
      stream event — the asynchronous-swapping pattern;
    - weights and inputs are taken from the [inputs] dict by node id.

    The generator is deliberately direct: one Python statement per
    operator, no fusion — faithfulness over cleverness. *)

open Magis_ir

let py_dtype = function
  | Shape.F32 -> "torch.float32"
  | Shape.TF32 -> "torch.float32"  (* tf32 is an execution mode, not a dtype *)
  | Shape.BF16 -> "torch.bfloat16"
  | Shape.F16 -> "torch.float16"
  | Shape.I64 -> "torch.int64"
  | Shape.I32 -> "torch.int32"
  | Shape.Bool -> "torch.bool"

let dims_tuple s =
  match Array.to_list (Shape.dims s) with
  | [ d ] -> Printf.sprintf "(%d,)" d
  | dims -> "(" ^ String.concat ", " (List.map string_of_int dims) ^ ")"

let var v = Printf.sprintf "t%d" v

let unary_expr (k : Op.unary_kind) x =
  match k with
  | Op.Relu -> Printf.sprintf "torch.relu(%s)" x
  | Op.Gelu -> Printf.sprintf "torch.nn.functional.gelu(%s)" x
  | Op.Tanh -> Printf.sprintf "torch.tanh(%s)" x
  | Op.Sigmoid -> Printf.sprintf "torch.sigmoid(%s)" x
  | Op.Exp -> Printf.sprintf "torch.exp(%s)" x
  | Op.Sqrt -> Printf.sprintf "torch.sqrt(%s)" x
  | Op.Neg -> Printf.sprintf "-%s" x
  | Op.Identity -> x
  | Op.Dropout -> Printf.sprintf "torch.nn.functional.dropout(%s, 0.1)" x
  | Op.Scale f -> Printf.sprintf "%s * %.9g" x f

let binary_expr (k : Op.binary_kind) a b =
  match k with
  | Op.Add -> Printf.sprintf "%s + %s" a b
  | Op.Sub -> Printf.sprintf "%s - %s" a b
  | Op.Mul -> Printf.sprintf "%s * %s" a b
  | Op.Div -> Printf.sprintf "%s / %s" a b
  | Op.Max -> Printf.sprintf "torch.maximum(%s, %s)" a b

(** Python expression computing node [n] from its operand variables. *)
let expr_of (g : Graph.t) (n : Graph.node) : string =
  let x i = var n.inputs.(i) in
  let in_shape i = Graph.shape g n.inputs.(i) in
  match n.op with
  | Op.Input _ -> Printf.sprintf "inputs[%d]" n.id
  | Op.Matmul { trans_a; trans_b } ->
      let a = if trans_a then x 0 ^ ".t()" else x 0 in
      let b = if trans_b then x 1 ^ ".t()" else x 1 in
      Printf.sprintf "torch.matmul(%s, %s)" a b
  | Op.Dense { trans_w } ->
      let w = if trans_w then x 1 ^ ".t()" else x 1 in
      Printf.sprintf "torch.matmul(%s, %s)" (x 0) w
  | Op.Dense_bwd_weight ->
      (* dw[k,n] = sum over leading dims of x ⊗ dy *)
      let r = Shape.rank (in_shape 0) in
      let flat s = Printf.sprintf "%s.reshape(-1, %d)" s (Shape.dim (in_shape 0) (r - 1)) in
      let flat_dy =
        Printf.sprintf "%s.reshape(-1, %d)" (x 1)
          (Shape.dim (in_shape 1) (Shape.rank (in_shape 1) - 1))
      in
      Printf.sprintf "torch.matmul(%s.t(), %s)" (flat (x 0)) flat_dy
  | Op.Batch_matmul { trans_a; trans_b } ->
      let a = if trans_a then x 0 ^ ".transpose(-2, -1)" else x 0 in
      let b = if trans_b then x 1 ^ ".transpose(-2, -1)" else x 1 in
      Printf.sprintf "torch.matmul(%s, %s)" a b
  | Op.Conv2d { stride; padding } ->
      Printf.sprintf
        "torch.nn.functional.conv2d(%s, %s, stride=%d, padding=%d)" (x 0)
        (x 1) stride padding
  | Op.Conv2d_bwd_data { stride; padding } ->
      if Array.length n.inputs = 3 then
        Printf.sprintf
          "torch.nn.grad.conv2d_input(%s.shape, %s, %s, stride=%d, padding=%d)"
          (x 2) (x 1) (x 0) stride padding
      else
        Printf.sprintf
          "torch.nn.functional.conv_transpose2d(%s, %s, stride=%d, padding=%d)"
          (x 0) (x 1) stride padding
  | Op.Conv2d_bwd_weight { stride; padding } ->
      Printf.sprintf
        "torch.nn.grad.conv2d_weight(%s, %s.shape, %s, stride=%d, padding=%d)"
        (x 1) (x 2) (x 0) stride padding
  | Op.Pool2d { p_kind = Op.P_max; kernel; p_stride } ->
      Printf.sprintf "torch.nn.functional.max_pool2d(%s, %d, stride=%d)" (x 0)
        kernel p_stride
  | Op.Pool2d { p_kind = Op.P_avg; kernel; p_stride } ->
      Printf.sprintf "torch.nn.functional.avg_pool2d(%s, %d, stride=%d)" (x 0)
        kernel p_stride
  | Op.Pool2d_bwd { kernel; p_stride; _ } ->
      Printf.sprintf
        "torch.nn.functional.interpolate(%s, scale_factor=%d) # pool bwd (k=%d)"
        (x 0) p_stride kernel
  | Op.Unary k -> unary_expr k (x 0)
  | Op.Binary k -> binary_expr k (x 0) (x 1)
  | Op.Bias_add axis ->
      let r = Shape.rank n.shape in
      if axis = r - 1 then Printf.sprintf "%s + %s" (x 0) (x 1)
      else
        let view =
          String.concat ", "
            (List.init r (fun i -> if i = axis then "-1" else "1"))
        in
        Printf.sprintf "%s + %s.view(%s)" (x 0) (x 1) view
  | Op.Softmax axis -> Printf.sprintf "torch.softmax(%s, dim=%d)" (x 0) axis
  | Op.Softmax_bwd axis ->
      Printf.sprintf
        "%s * (%s - (%s * %s).sum(dim=%d, keepdim=True))" (x 1) (x 0) (x 0)
        (x 1) axis
  | Op.Layer_norm axis ->
      let norm_dims =
        String.concat ", "
          (List.init
             (Shape.rank n.shape - axis)
             (fun i -> string_of_int (Shape.dim n.shape (axis + i))))
      in
      Printf.sprintf
        "torch.nn.functional.layer_norm(%s, (%s,), weight=%s, bias=%s)" (x 0)
        norm_dims (x 1) (x 2)
  | Op.Layer_norm_bwd _ ->
      Printf.sprintf "%s * %s # layer_norm bwd surrogate" (x 0) (x 2)
  | Op.Batch_norm ->
      Printf.sprintf
        "%s * %s.view(1, -1, 1, 1) + %s.view(1, -1, 1, 1)" (x 0) (x 1) (x 2)
  | Op.Reduce (k, axes) ->
      let dims = String.concat ", " (List.map string_of_int axes) in
      let fn =
        match k with
        | Op.R_sum -> "sum"
        | Op.R_mean -> "mean"
        | Op.R_max -> "amax"
      in
      Printf.sprintf "%s.%s(dim=(%s,))" (x 0) fn dims
  | Op.Broadcast { dims; axes } ->
      let unsq =
        List.fold_left
          (fun acc a -> Printf.sprintf "%s.unsqueeze(%d)" acc a)
          (x 0) axes
      in
      Printf.sprintf "%s.expand%s" unsq (dims_tuple n.shape)
      |> fun s -> ignore dims; s
  | Op.Transpose perm ->
      Printf.sprintf "%s.permute(%s)" (x 0)
        (String.concat ", " (Array.to_list (Array.map string_of_int perm)))
  | Op.Reshape dims ->
      Printf.sprintf "%s.reshape(%s)" (x 0)
        (String.concat ", " (Array.to_list (Array.map string_of_int dims)))
  | Op.Slice { axis; lo; hi } ->
      Printf.sprintf "%s.narrow(%d, %d, %d)" (x 0) axis lo (hi - lo)
  | Op.Concat axis ->
      Printf.sprintf "torch.cat([%s], dim=%d)"
        (String.concat ", "
           (Array.to_list (Array.map (fun u -> var u) n.inputs)))
        axis
  | Op.Embedding ->
      Printf.sprintf "torch.nn.functional.embedding(%s, %s)" (x 1) (x 0)
  | Op.Embedding_bwd ->
      Printf.sprintf
        "torch.zeros_like(%s).index_add_(0, %s.reshape(-1), %s.reshape(-1, %d))"
        (x 2) (x 1) (x 0)
        (Shape.dim n.shape 1)
  | Op.Store | Op.Load -> assert false (* handled by the emitter *)

(** Free positions: after which schedule step each tensor can be dropped
    (weights and graph outputs are kept). *)
let free_after (g : Graph.t) (order : int array) =
  let pos = Hashtbl.create (Array.length order) in
  Array.iteri (fun i v -> Hashtbl.replace pos v i) order;
  let last = Hashtbl.create (Array.length order) in
  Array.iter
    (fun v ->
      if not (Magis_ir.Op.is_weight (Graph.op g v)) then
        let f =
          List.fold_left
            (fun acc s ->
              match Hashtbl.find_opt pos s with
              | Some j -> max acc j
              | None -> acc)
            (Hashtbl.find pos v) (Graph.suc g v)
        in
        if Graph.suc g v <> [] then Hashtbl.replace last v f)
    order;
  (* invert: step -> tensors to free *)
  let frees = Array.make (Array.length order) [] in
  Hashtbl.iter (fun v f -> frees.(f) <- v :: frees.(f)) last;
  frees

(** Generate the Python module text. *)
let emit ?(module_doc = "generated by MAGIS") (g : Graph.t)
    ~(schedule : int list) : string =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let order = Array.of_list schedule in
  let frees = free_after g order in
  line "\"\"\"%s\"\"\"" module_doc;
  line "import torch";
  line "";
  line "COPY_STREAM = torch.cuda.Stream() if torch.cuda.is_available() else None";
  line "";
  line "def input_specs():";
  line "    \"\"\"node id -> (shape, dtype, kind) for every graph input\"\"\"";
  line "    return {";
  Graph.iter
    (fun n ->
      match n.op with
      | Op.Input kind ->
          line "        %d: (%s, %s, %S)," n.id (dims_tuple n.shape)
            (py_dtype (Shape.dtype n.shape))
            (Op.input_kind_name kind)
      | _ -> ())
    g;
  line "    }";
  line "";
  line "def run(inputs, device=\"cuda\"):";
  line "    \"\"\"execute one optimized step; returns the graph outputs\"\"\"";
  Array.iteri
    (fun step v ->
      let n = Graph.node g v in
      (match n.op with
      | Op.Store ->
          line "    with torch.cuda.stream(COPY_STREAM):";
          line "        %s = %s.to(\"cpu\", non_blocking=True)  # swap out"
            (var v) (var n.inputs.(0));
          line "    %s_ev = torch.cuda.Event(); %s_ev.record(COPY_STREAM)"
            (var v) (var v)
      | Op.Load ->
          let store = n.inputs.(0) in
          line "    %s_ev.wait()  # ensure the swap-out finished" (var store);
          line "    with torch.cuda.stream(COPY_STREAM):";
          line "        %s = %s.to(device, non_blocking=True)  # swap in"
            (var v) (var store);
          line "    torch.cuda.current_stream().wait_stream(COPY_STREAM)"
      | _ -> line "    %s = %s" (var v) (expr_of g n));
      List.iter (fun u -> line "    del %s  # dead after step %d" (var u) step)
        frees.(step))
    order;
  let outputs =
    List.filter (fun v -> not (Op.is_input (Graph.op g v))) (Graph.outputs g)
  in
  line "    return [%s]" (String.concat ", " (List.map var outputs));
  Buffer.contents buf

(** Emit with every enabled fission of [ftree] materialized first: the
    schedule is regenerated for the expanded graph by the caller-provided
    scheduler. *)
let emit_expanded ?(module_doc = "generated by MAGIS")
    (g : Graph.t) (ftree : Magis_ftree.Ftree.t)
    ~(reschedule : Graph.t -> int list) : string =
  let expanded =
    List.fold_left
      (fun acc i ->
        let f = Magis_ftree.Ftree.fission_at ftree i in
        if Magis_ftree.Ftree.has_enabled_ancestor ftree i then acc
        else if Magis_ftree.Fission.is_valid acc f then
          (Magis_ftree.Fission.expand acc f).graph
        else acc)
      g
      (Magis_ftree.Ftree.enabled_indices ftree)
  in
  emit ~module_doc expanded ~schedule:(reschedule expanded)
