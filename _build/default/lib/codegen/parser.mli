(** Parser for the text tensor-program format of {!Export.to_text}:
    round-trip property [parse (to_text g) ≡ g] up to node renumbering. *)

open Magis_ir

type program = {
  graph : Graph.t;
  id_map : (int, int) Hashtbl.t;  (** original id -> new id *)
  schedule : int list option;  (** remapped, when the header was present *)
}

val parse : string -> (program, string) result
