(** PyTorch code generation (§7.1): a self-contained Python module whose
    [run(inputs)] executes the operators in schedule order, frees tensors
    after their last consumer, and implements Store/Load with the CUDA
    Stream API (asynchronous swapping). *)

open Magis_ir

(** Python expression computing one node from its operand variables
    (exposed for tests; raises on Store/Load, which the emitter handles). *)
val expr_of : Graph.t -> Graph.node -> string

val emit : ?module_doc:string -> Graph.t -> schedule:int list -> string

(** Emit with every enabled fission of the tree materialized first; the
    caller provides the scheduler for the expanded graph. *)
val emit_expanded :
  ?module_doc:string ->
  Graph.t ->
  Magis_ftree.Ftree.t ->
  reschedule:(Graph.t -> int list) ->
  string
