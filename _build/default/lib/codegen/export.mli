(** Graph exporters: Graphviz dot, a stable line-based text program format
    (round-trip parsable by {!Parser}), and Chrome traces of simulated
    executions. *)

open Magis_ir
module Int_set = Util.Int_set

(** Graphviz rendering; [highlight] nodes are filled. *)
val to_dot : ?highlight:Int_set.t -> ?name:string -> Graph.t -> string

(** One line per node in topological order:
    [%<id> = <op> <dtype>[dims] (<inputs>) "label"]. *)
val to_text : Graph.t -> string

val to_text_with_schedule : Graph.t -> schedule:int list -> string

(** Node counts by operator, for reports. *)
val summary : Graph.t -> string

(** Chrome trace (chrome://tracing / Perfetto): compute lane, copy lane
    and a live-device-memory counter. *)
val to_chrome_trace :
  Magis_cost.Op_cost.t -> Graph.t -> schedule:int list -> string
