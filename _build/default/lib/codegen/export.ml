(** Graph exporters: Graphviz dot (for inspection) and a line-based
    tensor-program text format (stable, diffable, round-trip parsable —
    used by tests and for persisting optimized graphs). *)

open Magis_ir
module Int_set = Util.Int_set

(* ------------------------------------------------------------------ *)
(* Graphviz                                                            *)
(* ------------------------------------------------------------------ *)

(** Render to dot.  [highlight] nodes are filled (e.g. memory hot-spots
    or a fission region). *)
let to_dot ?(highlight = Int_set.empty) ?(name = "magis") (g : Graph.t) :
    string =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "digraph %s {" name;
  line "  rankdir=TB; node [shape=box, fontsize=10];";
  Graph.iter
    (fun n ->
      let fill =
        if Int_set.mem n.id highlight then ", style=filled, fillcolor=lightsalmon"
        else if Op.is_input n.op then ", style=filled, fillcolor=lightgray"
        else if Op.is_swap n.op then ", style=filled, fillcolor=lightblue"
        else ""
      in
      line "  n%d [label=\"%d: %s\\n%s\"%s];" n.id n.id (Op.name n.op)
        (Shape.to_string n.shape) fill)
    g;
  Graph.iter
    (fun n ->
      Array.iteri
        (fun slot u -> line "  n%d -> n%d [label=\"%d\", fontsize=8];" u n.id slot)
        n.inputs)
    g;
  line "}";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Text program format                                                 *)
(* ------------------------------------------------------------------ *)

(** One line per node, in topological order:
    [%<id> = <op-name> [<dtype>[d0,d1,...]] (<input ids>) "label"]. *)
let to_text (g : Graph.t) : string =
  let buf = Buffer.create 2048 in
  List.iter
    (fun v ->
      let n = Graph.node g v in
      Buffer.add_string buf
        (Printf.sprintf "%%%d = %s %s (%s) %S\n" n.id (Op.name n.op)
           (Shape.to_string n.shape)
           (String.concat ","
              (Array.to_list (Array.map string_of_int n.inputs)))
           n.label))
    (Graph.topo_order g);
  Buffer.contents buf

(** Schedule as a one-line comment plus the program text. *)
let to_text_with_schedule (g : Graph.t) ~(schedule : int list) : string =
  Printf.sprintf "# schedule: %s\n%s"
    (String.concat " " (List.map string_of_int schedule))
    (to_text g)

(** Summary statistics block, for reports. *)
let summary (g : Graph.t) : string =
  let ops = Hashtbl.create 16 in
  Graph.iter
    (fun n ->
      let key = Op.name n.op in
      Hashtbl.replace ops key (1 + Option.value ~default:0 (Hashtbl.find_opt ops key)))
    g;
  let rows =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) ops []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  String.concat "\n"
    (Printf.sprintf "nodes: %d, weights: %d bytes" (Graph.n_nodes g)
       (Graph.weight_bytes g)
    :: List.map (fun (k, v) -> Printf.sprintf "  %4d x %s" v k) rows)

(* ------------------------------------------------------------------ *)
(* Chrome trace                                                        *)
(* ------------------------------------------------------------------ *)

(** Export a simulated execution as a Chrome trace (load in
    chrome://tracing or Perfetto): one lane for the compute stream, one
    for the copy stream, and a counter track with the live device
    memory. *)
let to_chrome_trace (cache : Magis_cost.Op_cost.t) (g : Graph.t)
    ~(schedule : int list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  let first = ref true in
  let event fmt =
    Printf.ksprintf
      (fun s ->
        if not !first then Buffer.add_string buf ",\n";
        first := false;
        Buffer.add_string buf s)
      fmt
  in
  let finish = Hashtbl.create 64 in
  let ready v =
    List.fold_left
      (fun acc p -> match Hashtbl.find_opt finish p with
         | Some t -> Float.max acc t | None -> acc)
      0.0 (Graph.pre g v)
  in
  let t_compute = ref 0.0 and t_copy = ref 0.0 in
  let us t = t *. 1e6 in
  List.iter
    (fun v ->
      let n = Graph.node g v in
      match n.op with
      | Op.Input _ -> Hashtbl.replace finish v 0.0
      | Op.Store | Op.Load ->
          let dur = Magis_cost.Op_cost.swap_time cache (Shape.size_bytes n.shape) in
          let start = Float.max !t_copy (ready v) in
          t_copy := start +. dur;
          Hashtbl.replace finish v !t_copy;
          event
            {|  {"name": %S, "ph": "X", "ts": %.1f, "dur": %.1f, "pid": 1, "tid": 2}|}
            (Printf.sprintf "%d:%s" v (Op.name n.op))
            (us start) (us dur)
      | _ ->
          let dur = Magis_cost.Op_cost.node_cost cache g v in
          let start = Float.max !t_compute (ready v) in
          t_compute := start +. dur;
          Hashtbl.replace finish v !t_compute;
          event
            {|  {"name": %S, "ph": "X", "ts": %.1f, "dur": %.1f, "pid": 1, "tid": 1}|}
            (Printf.sprintf "%d:%s" v (Op.name n.op))
            (us start) (us dur))
    schedule;
  (* memory counter sampled at each node's finish time *)
  let analysis = Magis_cost.Lifetime.analyze g schedule in
  let timeline = Magis_cost.Lifetime.timeline analysis in
  List.iteri
    (fun i v ->
      match Hashtbl.find_opt finish v with
      | Some t when i < Array.length timeline ->
          event
            {|  {"name": "device memory", "ph": "C", "ts": %.1f, "pid": 1, "args": {"MB": %.1f}}|}
            (us t)
            (float_of_int timeline.(i) /. 1e6)
      | _ -> ())
    schedule;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf
