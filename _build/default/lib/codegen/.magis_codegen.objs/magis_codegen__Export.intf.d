lib/codegen/export.mli: Graph Magis_cost Magis_ir Util
