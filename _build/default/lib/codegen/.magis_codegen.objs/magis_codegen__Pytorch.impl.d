lib/codegen/pytorch.ml: Array Buffer Graph Hashtbl List Magis_ftree Magis_ir Op Printf Shape String
