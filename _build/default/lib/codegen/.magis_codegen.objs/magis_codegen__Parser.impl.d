lib/codegen/parser.ml: Array Fun Graph Hashtbl List Magis_ir Op Option Printf Scanf Shape String
