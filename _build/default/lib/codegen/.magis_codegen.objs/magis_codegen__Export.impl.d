lib/codegen/export.ml: Array Buffer Float Graph Hashtbl List Magis_cost Magis_ir Op Option Printf Shape String Util
