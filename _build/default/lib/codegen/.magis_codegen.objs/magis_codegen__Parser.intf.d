lib/codegen/parser.mli: Graph Hashtbl Magis_ir
