lib/codegen/pytorch.mli: Graph Magis_ftree Magis_ir
