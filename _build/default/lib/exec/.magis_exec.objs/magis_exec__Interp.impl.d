lib/exec/interp.ml: Array Float Fun Graph Hashtbl List Magis_ir Op Printf Random Shape
