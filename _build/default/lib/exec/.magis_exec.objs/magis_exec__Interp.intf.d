lib/exec/interp.mli: Graph Hashtbl Magis_ir Shape
