(** Reference interpreter: execute computation graphs on float arrays —
    the semantic ground truth every graph transformation is numerically
    checked against.  Backward surrogate operators get simple
    deterministic semantics (equivalence testing needs consistency, not
    analytic gradients). *)

open Magis_ir

type tensor = { shape : Shape.t; data : float array }

val numel : tensor -> int
val create : Shape.t -> tensor
val of_fn : Shape.t -> (int -> float) -> tensor

(** Deterministic pseudo-random fill in [-1, 1). *)
val random : ?seed:int -> Shape.t -> tensor

(** Integer-valued fill in [0, bound), for index tensors. *)
val indices : ?seed:int -> bound:int -> Shape.t -> tensor

(** Evaluate one operator node (exposed for tests). *)
val eval_node : Graph.t -> Graph.node -> tensor array -> tensor

(** Evaluate the graph; inputs come from [env].  Returns every node's
    value. *)
val run : Graph.t -> env:(int -> tensor) -> (int, tensor) Hashtbl.t

(** Deterministic inputs: random floats; valid indices for I64 tensors. *)
val default_env : Graph.t -> int -> tensor

(** Maximum absolute element-wise difference (infinite on shape
    mismatch). *)
val max_diff : tensor -> tensor -> float
