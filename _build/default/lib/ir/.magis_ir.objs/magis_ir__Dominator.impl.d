lib/ir/dominator.ml: Array Graph Hashtbl List Op Seq Util
