lib/ir/op.ml: Array Fun List Printf Shape String Util
