lib/ir/shape.mli: Format
