lib/ir/wl_hash.mli: Graph Util
