lib/ir/wl_hash.ml: Array Graph Int64 List Op Shape Util
