lib/ir/util.ml: Char Int Int64 List Map Set String
