lib/ir/graph.ml: Array Fmt Hashtbl Int List Op Printf Set Shape Util
