lib/ir/shape.ml: Array Fmt Printf Util
