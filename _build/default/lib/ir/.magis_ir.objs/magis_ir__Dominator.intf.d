lib/ir/dominator.mli: Graph Util
