lib/ir/op.mli: Shape
