(** Small shared utilities for the IR layer: integer maps/sets and a
    deterministic 64-bit mixing hash used by {!Wl_hash}. *)

module Int_map = Map.Make (Int)
module Int_set = Set.Make (Int)

let int_set_of_list ids = Int_set.of_list ids

(* SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer.  We use it
   instead of [Hashtbl.hash] because we need the full 64-bit range and a
   stable definition across OCaml versions. *)
let mix64 (x : int64) : int64 =
  let open Int64 in
  let x = logxor x (shift_right_logical x 30) in
  let x = mul x 0xbf58476d1ce4e5b9L in
  let x = logxor x (shift_right_logical x 27) in
  let x = mul x 0x94d049bb133111ebL in
  logxor x (shift_right_logical x 31)

let hash_combine (h : int64) (x : int64) : int64 =
  mix64 (Int64.add (Int64.mul h 0x100000001b3L) x)

let hash_string (s : string) : int64 =
  let h = ref 0xcbf29ce484222325L in
  String.iter (fun c -> h := hash_combine !h (Int64.of_int (Char.code c))) s;
  !h

let hash_int_list (xs : int list) : int64 =
  List.fold_left (fun h x -> hash_combine h (Int64.of_int x)) 0x9e3779b97f4a7c15L xs

(** [take n xs] is the first [n] elements of [xs] (all of them if shorter). *)
let rec take n = function
  | [] -> []
  | x :: xs -> if n <= 0 then [] else x :: take (n - 1) xs

(** [drop n xs] is [xs] without its first [n] elements. *)
let rec drop n = function
  | [] -> []
  | _ :: xs as l -> if n <= 0 then l else drop (n - 1) xs

let sum_by f xs = List.fold_left (fun acc x -> acc + f x) 0 xs
let sum_by_f f xs = List.fold_left (fun acc x -> acc +. f x) 0.0 xs
