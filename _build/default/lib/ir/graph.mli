(** Computation graphs: persistent DAGs of operator nodes.

    Mutation functions return new graphs sharing structure with the old
    one, so the optimizer can hold thousands of candidate graphs cheaply.
    The set-level queries mirror Table 1 of the paper. *)

module Int_map = Util.Int_map
module Int_set = Util.Int_set

type node = {
  id : int;
  op : Op.kind;
  shape : Shape.t;
  label : string;  (** human-readable name, for debugging/printing *)
  inputs : int array;  (** operand slots, in order *)
}

type t

val empty : t
val n_nodes : t -> int
val mem : t -> int -> bool

(** Raises [Invalid_argument] on an unknown id. *)
val node : t -> int -> node

val node_opt : t -> int -> node option
val shape : t -> int -> Shape.t
val op : t -> int -> Op.kind
val size_bytes : t -> int -> int

val nodes : t -> node list
val node_ids : t -> int list
val fold : (node -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (node -> unit) -> t -> unit

(** Consumers of a node, as a set / sorted list. *)
val succ_set : t -> int -> Int_set.t

val suc : t -> int -> int list

(** Distinct operands of a node. *)
val pre : t -> int -> int list

val in_degree : t -> int -> int
val out_degree : t -> int -> int

(** {1 Construction} *)

(** [add_input g kind shape] adds a graph input (placeholder / weight /
    label); returns the extended graph and the new id. *)
val add_input : ?label:string -> t -> Op.input_kind -> Shape.t -> t * int

(** [add g op inputs] adds an operator node, inferring its output shape.
    Raises [Invalid_argument] on malformed use. *)
val add : ?label:string -> t -> Op.kind -> int list -> t * int

(** Remove a node with no consumers (raises otherwise). *)
val remove : t -> int -> t

(** [redirect g ~from_ ~to_] rewires every consumer of [from_] to
    [to_]; shapes must agree. *)
val redirect : t -> from_:int -> to_:int -> t

(** Replace occurrences of [old_src] among [node_id]'s operands. *)
val replace_input : t -> node_id:int -> old_src:int -> new_src:int -> t

(** [prune_dead ~keep g] removes consumer-less operator nodes except
    graph inputs and the protected [keep] set (pass the intended graph
    outputs or they would be swept away). *)
val prune_dead : keep:Int_set.t -> t -> t

(** {1 Queries (Table 1)} *)

(** Nodes with no operands. *)
val inputs : t -> int list

(** Nodes with no consumers. *)
val outputs : t -> int list

(** Strict ancestors / descendants of a node. *)
val anc : t -> int -> Int_set.t

val des : t -> int -> Int_set.t
val anc_of_set : t -> Int_set.t -> Int_set.t
val des_of_set : t -> Int_set.t -> Int_set.t

(** [G.inps(S)]: nodes outside [S] consumed by members of [S]. *)
val inps_of : t -> Int_set.t -> Int_set.t

(** [G.outs(S)]: members of [S] consumed outside (or graph outputs). *)
val outs_of : t -> Int_set.t -> Int_set.t

val is_weakly_connected : t -> Int_set.t -> bool

(** Convexity: no path leaves [S] and re-enters it. *)
val is_convex : t -> Int_set.t -> bool

(** Weakly-connected components of the induced sub-graph. *)
val components_of : t -> Int_set.t -> Int_set.t list

(** {1 Topological order} *)

(** Deterministic Kahn order; raises on a cyclic graph. *)
val topo_order : t -> int list

(** Permutation of the node set respecting all dependencies? *)
val is_valid_order : t -> int list -> bool

(** Eager (define-by-run) execution order of the unoptimized baseline. *)
val program_order : t -> int list

(** {1 Printing and statistics} *)

val pp_node : t -> Format.formatter -> int -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Total bytes of weight tensors (always-resident memory). *)
val weight_bytes : t -> int
