(** Dominator trees over computation graphs (Cooper–Harvey–Kennedy).

    Per §2.1 of the paper, the tree is rooted at the *primary* input
    tensor(s) by default — placeholders, excluding weights and labels
    (the gradient seed is a label-kind input) — which is what lets a
    layer's input dominate both its forward remainder and the
    corresponding backward operators. *)

module Int_map = Util.Int_map
module Int_set = Util.Int_set

type t

(** Immediate dominator of the roots. *)
val virtual_root : int

(** [compute ?members ?entries g] builds the tree of [g], or of the
    sub-graph induced by [members]; [entries] overrides the root set.
    Nodes unreachable from the entries are absent from the tree. *)
val compute : ?members:Int_set.t -> ?entries:int list -> Graph.t -> t

(** Immediate dominator; [Some virtual_root] for roots, [None] for nodes
    absent from the tree. *)
val idom : t -> int -> int option

val children : t -> int -> Int_set.t

(** All nodes strictly dominated by [v] (the paper's [T.des(v)]). *)
val strict_subtree : t -> int -> Int_set.t

(** [strict_subtree] plus the node itself. *)
val subtree : t -> int -> Int_set.t

(** Reflexive dominance test. *)
val dominates : t -> int -> int -> bool

(** Nodes in the reverse postorder used to build the tree. *)
val rpo : t -> int array
