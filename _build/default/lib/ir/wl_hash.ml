(** Weisfeiler–Lehman-style graph hashing (Algorithm 3, lines 3–6).

    Every node receives a label combining its operator fingerprint, output
    shape and the (ordered) labels of its operands; the graph hash is a
    commutative combination of all node labels, so two graphs that are equal
    up to node renumbering hash identically.  Used by the optimizer to
    filter duplicate search states. *)

module Int_map = Util.Int_map

(** Per-node WL labels in topological order. *)
let node_labels (g : Graph.t) : int64 Int_map.t =
  let order = Graph.topo_order g in
  List.fold_left
    (fun acc v ->
      let n = Graph.node g v in
      let h0 = Util.hash_combine (Op.fingerprint n.op) (Shape.hash n.shape) in
      let h =
        Array.fold_left
          (fun h p -> Util.hash_combine h (Int_map.find p acc))
          h0 n.inputs
      in
      Int_map.add v (Util.mix64 h) acc)
    Int_map.empty order

(** Structural hash of the whole graph (invariant under node renumbering). *)
let hash (g : Graph.t) : int64 =
  let labels = node_labels g in
  let sum =
    Int_map.fold (fun _ h acc -> Int64.add acc h) labels 0L
  in
  Util.mix64 sum

let equal_structure a b = Int64.equal (hash a) (hash b)
