(** Weisfeiler–Lehman-style graph hashing (Algorithm 3, lines 3–6):
    structural hashes invariant under node renumbering, used by the
    optimizer to filter duplicate search states. *)

module Int_map = Util.Int_map

(** Per-node WL labels (operator fingerprint ⊕ shape ⊕ ordered operand
    labels), in topological order. *)
val node_labels : Graph.t -> int64 Int_map.t

(** Structural hash of the whole graph. *)
val hash : Graph.t -> int64

val equal_structure : Graph.t -> Graph.t -> bool
