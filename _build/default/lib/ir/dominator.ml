(** Dominator trees over computation graphs.

    Implements the Cooper–Harvey–Kennedy iterative algorithm.  Because a
    computation graph has many entry nodes (inputs, weights, labels), we
    dominate from a *virtual root* that feeds every zero-predecessor node,
    matching §2.1 of the paper ("the dominator tree we use here usually
    takes the input tensor as the entry").

    The resulting tree maps each node to its immediate dominator; nodes
    whose immediate dominator is the virtual root are roots of the forest.
    [subtree t v] is the paper's [T.des(v)] plus [v] itself. *)

module Int_map = Util.Int_map
module Int_set = Util.Int_set

type t = {
  idom : int Int_map.t;  (** immediate dominator; virtual root = -1 *)
  children : Int_set.t Int_map.t;
  order : int array;  (** reverse postorder used to build the tree *)
}

let virtual_root = -1

let idom t v = Int_map.find_opt v t.idom

let children t v =
  match Int_map.find_opt v t.children with
  | Some s -> s
  | None -> Int_set.empty

(** All nodes strictly dominated by [v] ([T.des(v)] in the paper). *)
let strict_subtree t v =
  let rec go acc frontier =
    match frontier with
    | [] -> acc
    | u :: rest ->
        let cs = children t u in
        let acc = Int_set.union acc cs in
        go acc (Int_set.elements cs @ rest)
  in
  go Int_set.empty [ v ]

(** [subtree t v] = strict_subtree + v. *)
let subtree t v = Int_set.add v (strict_subtree t v)

(** [dominates t u v] iff [u] dominates [v] (reflexive). *)
let dominates t u v =
  let rec climb x = if x = u then true
    else match Int_map.find_opt x t.idom with
      | None -> false
      | Some p -> p <> virtual_root && climb p
  in
  u = v || climb v

(** [compute ?members ?entries g] builds the dominator tree of [g], or of
    the sub-graph induced by [members] when given (edges to/from outside
    nodes are ignored).

    [entries] selects the roots.  Per §2.1 of the paper, the tree "usually
    takes the input tensor as the entry": by default we root at the
    *primary* inputs — placeholders, excluding weights and labels (the
    gradient seed of a training graph is a label-kind input).  This is
    what lets a layer's input dominate both its forward remainder and the
    corresponding backward operators.  Falls back to all zero-predecessor
    nodes when no primary input exists.  Nodes unreachable from the
    entries are absent from the tree. *)
let compute ?members ?entries (g : Graph.t) : t =
  let keep =
    match members with
    | None -> fun _ -> true
    | Some s -> fun v -> Int_set.mem v s
  in
  let pre g v = List.filter keep (Graph.pre g v) in
  let suc g v = List.filter keep (Graph.suc g v) in
  let entry_nodes =
    match entries with
    | Some e -> List.filter keep e
    | None -> (
        let zero_pred =
          match members with
          | None -> Graph.inputs g
          | Some s ->
              Int_set.elements (Int_set.filter (fun v -> pre g v = []) s)
        in
        let primary =
          List.filter
            (fun v ->
              match (Graph.node g v).op with
              | Op.Input Op.Placeholder -> true
              | _ -> false)
            zero_pred
        in
        match primary with [] -> zero_pred | _ -> primary)
  in
  let visited = Hashtbl.create (Graph.n_nodes g) in
  let post = ref [] in
  let rec dfs v =
    if not (Hashtbl.mem visited v) then begin
      Hashtbl.replace visited v ();
      List.iter dfs (suc g v);
      post := v :: !post
    end
  in
  List.iter dfs entry_nodes;
  let order = Array.of_list !post in
  let n = Array.length order in
  let rpo_index = Hashtbl.create n in
  Array.iteri (fun i v -> Hashtbl.replace rpo_index v i) order;
  (* idom as array over rpo indices; -2 = undefined, -1 = virtual root *)
  let idom = Array.make n (-2) in
  let intersect a b =
    (* walk up the tree: smaller rpo index = higher in the order *)
    let rec go a b =
      if a = b then a
      else if a > b then go idom.(a) b
      else go a idom.(b)
    in
    go a b
  in
  let changed = ref true in
  (* Entry-adjacent nodes (graph inputs) get the virtual root directly. *)
  List.iter
    (fun v ->
      match Hashtbl.find_opt rpo_index v with
      | Some i -> idom.(i) <- -1
      | None -> ())
    entry_nodes;
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      let v = order.(i) in
      if not (pre g v = []) then begin
        let preds =
          List.filter_map (fun p -> Hashtbl.find_opt rpo_index p) (pre g v)
        in
        let processed = List.filter (fun p -> idom.(p) <> -2) preds in
        match processed with
        | [] -> ()
        | first :: rest ->
            let new_idom =
              List.fold_left
                (fun acc p -> if acc = -1 || p = -1 then -1 else intersect acc p)
                first rest
            in
            if idom.(i) <> new_idom then begin
              idom.(i) <- new_idom;
              changed := true
            end
      end
    done
  done;
  let idom_map =
    Array.to_seq order
    |> Seq.mapi (fun i v ->
           (v, if idom.(i) < 0 then virtual_root else order.(idom.(i))))
    |> Int_map.of_seq
  in
  let children =
    Int_map.fold
      (fun v p acc ->
        if p = virtual_root then acc
        else
          let s =
            match Int_map.find_opt p acc with
            | Some s -> s
            | None -> Int_set.empty
          in
          Int_map.add p (Int_set.add v s) acc)
      idom_map Int_map.empty
  in
  { idom = idom_map; children; order }

(** Nodes in reverse postorder (useful for deterministic traversals). *)
let rpo t = Array.copy t.order
