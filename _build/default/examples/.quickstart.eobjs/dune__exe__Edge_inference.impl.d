examples/edge_inference.ml: Fmt Graph Hardware List Magis Op_cost Reorder Search Simulator Spatial Unet Util
