examples/llm_on_small_gpu.ml: Dtr Fmt Ftree Graph Hardware List Magis Op Op_cost Outcome Pofo Search Simulator Transformer Xla
