examples/attention_fission.ml: Builder Dgraph Fission Fmt Ftree Graph Hardware Lifetime List Magis Op_cost Reorder Shape Simulator Transformer Util
