examples/quickstart.mli:
