examples/llm_on_small_gpu.mli:
