examples/custom_model.ml: Autodiff Builder Fmt Graph Hardware List Magis Op_cost Search Shape Simulator Transformer
