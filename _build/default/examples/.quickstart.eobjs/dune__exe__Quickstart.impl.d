examples/quickstart.ml: Fission Fmt Ftree Graph Hardware List Magis Op Op_cost Search Simulator Unet Util
