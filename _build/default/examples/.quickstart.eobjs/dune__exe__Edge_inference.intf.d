examples/edge_inference.mli:
