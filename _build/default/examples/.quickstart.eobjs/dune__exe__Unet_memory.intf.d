examples/unet_memory.mli:
