examples/unet_memory.ml: Array Char Fmt Ftree Graph Hardware Lifetime List Magis Op_cost Search Simulator Zoo
