(** Fission of a self-attention block (the paper's Fig. 4 walk-through).

    Builds the attention sub-graph, prints its D-Graph components (the
    graph-level batch/head/sequence dimensions), constructs the F-Tree,
    and applies a head-dimension fission by hand, comparing memory and
    latency before and after.

    Run with: [dune exec examples/attention_fission.exe] *)

open Magis
module Int_set = Util.Int_set

let () =
  let cache = Op_cost.create Hardware.default in
  let b = Builder.create () in
  let batch = 16 and seq = 64 and hidden = 256 and heads = 8 in
  let x = Builder.input b [ batch; seq; hidden ] ~dtype:Shape.F32 in
  let y =
    Transformer.block b x
      { Transformer.batch; seq_len = seq; hidden; heads; layers = 1;
        vocab = 0 |> max 1; dtype = Shape.F32 }
  in
  ignore y;
  let g = Builder.finish b in
  Fmt.pr "self-attention block: %d operators@." (Graph.n_nodes g);

  (* the D-Graph identifies the graph-level dimensions (Fig. 4c) *)
  let dg = Dgraph.build g in
  let comps = Dgraph.components dg in
  Fmt.pr "D-Graph: %d graph-level dimensions@." (List.length comps);
  List.iteri
    (fun i c ->
      let nodes = Dgraph.graph_nodes_of_component c in
      Fmt.pr "  dimension %d runs through %d operators@." i
        (Int_set.cardinal nodes))
    comps;

  (* baseline profile *)
  let order = Graph.program_order g in
  let base = Simulator.run cache g order in
  Fmt.pr "baseline: peak %.1f MB, latency %.3f ms@."
    (float_of_int base.peak_mem /. 1e6)
    (base.latency *. 1e3);

  (* construct the F-Tree from the memory hot-spots (Algorithm 1) *)
  let hot = Lifetime.hotspots base.analysis in
  let ftree = Ftree.construct g ~hotspots:hot in
  Fmt.pr "F-Tree: %d fission candidates@." (Ftree.n_entries ftree);

  (* enable candidates one at a time and report the trade-off *)
  for i = 0 to Ftree.n_entries ftree - 1 do
    let f = Ftree.fission_at ftree i in
    match Ftree.smallest_valid_n g f with
    | None -> ()
    | Some n ->
        let t = Ftree.set_n ftree i n in
        let acc = Ftree.accounting cache g t in
        let r = Simulator.run ~size_of:acc.size_of ~cost_of:acc.cost_of cache g order in
        Fmt.pr
          "  candidate %d: |S|=%-3d n=%d -> peak %.1f MB (%.0f%%), latency %+.1f%%@."
          i
          (Int_set.cardinal (Fission.members f))
          n
          (float_of_int r.peak_mem /. 1e6)
          (100.0 *. float_of_int r.peak_mem /. float_of_int base.peak_mem)
          (100.0
          *. (r.latency +. acc.extra_latency -. base.latency)
          /. base.latency)
  done;

  (* materialize the best candidate as a real graph rewrite *)
  let best = ref None in
  for i = 0 to Ftree.n_entries ftree - 1 do
    let f = Ftree.fission_at ftree i in
    match Ftree.smallest_valid_n g f with
    | Some n ->
        let members = Int_set.cardinal (Fission.members f) in
        (match !best with
        | Some (m, _, _) when m >= members -> ()
        | _ -> best := Some (members, f, n))
    | None -> ()
  done;
  match !best with
  | None -> Fmt.pr "no valid fission candidate@."
  | Some (_, f, n) ->
      let e = Fission.expand g (Fission.with_n f n) in
      Fmt.pr "expanded the largest candidate: %d -> %d operators@."
        (Graph.n_nodes g)
        (Graph.n_nodes e.graph);
      let order' = Reorder.schedule ~max_states:2_000 e.graph in
      let r = Simulator.run cache e.graph order' in
      Fmt.pr "real expansion: peak %.1f MB, latency %.3f ms@."
        (float_of_int r.peak_mem /. 1e6)
        (r.latency *. 1e3)
