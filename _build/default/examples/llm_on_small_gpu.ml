(** Fitting an LLM training step onto a small device: GPT-Neo-style
    training needs tens of GB unoptimized; this example asks MAGIS to
    bring the peak under a target and compares against the baselines.

    Run with: [dune exec examples/llm_on_small_gpu.exe] *)

open Magis

let gb bytes = float_of_int bytes /. 1e9
let mb bytes = float_of_int bytes /. 1e6

let () =
  let cache = Op_cost.create Hardware.default in
  (* a reduced GPT-Neo so the example runs in seconds; scale up at will *)
  let graph =
    Transformer.build_lm
      (Transformer.gpt_neo_1_3b ~seq_len:256 ~layers:4 ~vocab:8192 ())
  in
  let base = Simulator.run cache graph (Graph.program_order graph) in
  Fmt.pr "GPT-Neo (4 layers, seq 256): %d ops, weights %.2f GB, peak %.2f GB, step %.0f ms@."
    (Graph.n_nodes graph)
    (gb (Graph.weight_bytes graph))
    (gb base.peak_mem) (base.latency *. 1e3);

  let target_ratio = 0.5 in
  let budget = int_of_float (float_of_int base.peak_mem *. target_ratio) in
  Fmt.pr "target: %.2f GB (%.0f%% of unoptimized)@." (gb budget)
    (100.0 *. target_ratio);

  (* baselines *)
  let report (o : Outcome.t) =
    if o.feasible then
      Fmt.pr "  %-8s peak %8.1f MB, step %+6.1f%%@." o.system (mb o.peak_mem)
        (100.0 *. (o.latency -. base.latency) /. base.latency)
    else Fmt.pr "  %-8s FAILURE@." o.system
  in
  report (Pofo.run cache graph ~budget);
  report (Dtr.run cache graph ~budget);
  report (Xla.run cache graph ~budget);

  (* MAGIS *)
  let config = { Search.default_config with time_budget = 8.0 } in
  let r = Search.run ~config cache (Search.Min_latency { mem_limit = budget }) graph in
  report
    {
      Outcome.system = "MAGIS";
      peak_mem = r.best.peak_mem;
      latency = r.best.latency;
      feasible = r.best.peak_mem <= budget;
    };
  Fmt.pr "MAGIS plan: %d fission region(s), %d swap(s), %d re-materialized op(s)@."
    (List.length (Ftree.enabled_indices r.best.ftree))
    (Graph.fold (fun n a -> if n.op = Op.Store then a + 1 else a) r.best.graph 0)
    (Graph.n_nodes r.best.graph - Graph.n_nodes graph)
