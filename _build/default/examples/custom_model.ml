(** Bringing your own model: define a network with the builder DSL, get
    the training graph with reverse-mode autodiff, and optimize it.

    Run with: [dune exec examples/custom_model.exe] *)

open Magis
module B = Builder

(* a small conv-attention hybrid, just to show the DSL *)
let my_model ~batch =
  let b = B.create () in
  let x = B.input b [ batch; 3; 32; 32 ] ~dtype:Shape.F32 in
  (* conv stem *)
  let w1 = B.weight b [ 32; 3; 3; 3 ] ~dtype:Shape.F32 in
  let h = B.relu b (B.conv2d ~padding:1 b x w1) in
  let h = B.maxpool2d b h in
  (* flatten spatial grid into a sequence: [batch, 256, 32] *)
  let h = B.reshape b ~dims:[| batch; 32; 256 |] h in
  let seq = B.transpose b ~perm:[| 0; 2; 1 |] h in
  (* one attention layer over the 256 patches *)
  let att =
    Transformer.block b seq
      { Transformer.batch; seq_len = 256; hidden = 32; heads = 4;
        layers = 1; vocab = 1; dtype = Shape.F32 }
  in
  (* classifier *)
  let pooled = B.reduce_sum b ~axes:[ 1 ] att in
  let w_out = B.weight b [ 32; 10 ] ~dtype:Shape.F32 in
  let bias = B.weight b [ 10 ] ~dtype:Shape.F32 in
  let logits = B.linear b pooled w_out bias in
  let loss = B.sum_loss b logits in
  Autodiff.backward (B.finish b) ~loss

let () =
  let cache = Op_cost.create Hardware.default in
  let graph = my_model ~batch:64 in
  let base = Simulator.run cache graph (Graph.program_order graph) in
  Fmt.pr "custom model: %d ops, peak %.1f MB, step %.2f ms@."
    (Graph.n_nodes graph)
    (float_of_int base.peak_mem /. 1e6)
    (base.latency *. 1e3);
  let config = { Search.default_config with time_budget = 5.0 } in
  let r = Search.optimize_memory ~config cache ~overhead:0.10 graph in
  Fmt.pr "optimized: peak %.1f MB (%.0f%%), step %.2f ms (%+.1f%%)@."
    (float_of_int r.best.peak_mem /. 1e6)
    (100.0 *. float_of_int r.best.peak_mem /. float_of_int base.peak_mem)
    (r.best.latency *. 1e3)
    (100.0 *. (r.best.latency -. base.latency) /. base.latency);
  (* inspect the improvement history *)
  Fmt.pr "search history:@.";
  List.iter
    (fun (t, peak, lat) ->
      Fmt.pr "  %5.1fs  %7.1f MB  %6.2f ms@." t
        (float_of_int peak /. 1e6)
        (lat *. 1e3))
    r.history
