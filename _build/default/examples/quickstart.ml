(** Quickstart: build a training graph, look at its memory profile, and
    let MAGIS shrink the peak under a 10% latency budget.

    Run with: [dune exec examples/quickstart.exe] *)

open Magis

let mb bytes = float_of_int bytes /. 1e6
let ms secs = secs *. 1e3

let () =
  (* 1. a cost model for the target device (an RTX 3090 by default) *)
  let cache = Op_cost.create Hardware.default in
  Fmt.pr "device: %a@." Hardware.pp Hardware.default;

  (* 2. a workload: U-Net training, reduced size *)
  let graph = Unet.build_unet ~batch:8 ~image:64 ~base:16 ~depth:3 () in
  Fmt.pr "graph: %d operators, %.1f MB of weights@." (Graph.n_nodes graph)
    (mb (Graph.weight_bytes graph));

  (* 3. the unoptimized profile (PyTorch-style execution) *)
  let base = Simulator.run cache graph (Graph.program_order graph) in
  Fmt.pr "unoptimized: peak %.1f MB, latency %.2f ms@." (mb base.peak_mem)
    (ms base.latency);

  (* 4. optimize memory with at most 10%% extra latency *)
  let config = { Search.default_config with time_budget = 5.0 } in
  let result = Search.optimize_memory ~config cache ~overhead:0.10 graph in
  let best = result.best in
  Fmt.pr "MAGIS:       peak %.1f MB (%.0f%%), latency %.2f ms (%+.1f%%)@."
    (mb best.peak_mem)
    (100.0 *. float_of_int best.peak_mem /. float_of_int base.peak_mem)
    (ms best.latency)
    (100.0 *. (best.latency -. base.latency) /. base.latency);

  (* 5. what did it do? *)
  let fissions = Ftree.enabled_indices best.ftree in
  let swaps =
    Graph.fold
      (fun n acc -> if n.op = Op.Store then acc + 1 else acc)
      best.graph 0
  in
  Fmt.pr "plan: %d fission region(s), %d tensor(s) swapped to host, %d graph nodes@."
    (List.length fissions) swaps
    (Graph.n_nodes best.graph);
  List.iter
    (fun i ->
      let f = Ftree.fission_at best.ftree i in
      Fmt.pr "  - split a %d-operator region into %d sequential parts@."
        (Util.Int_set.cardinal (Fission.members f))
        (Fission.fission_number f))
    fissions
