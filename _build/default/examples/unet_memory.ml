(** Memory-constrained U-Net training (the paper's Fig. 16 case study):
    optimize the same network at two peak-memory caps and print the
    execution-time/memory profile of each plan.

    Run with: [dune exec examples/unet_memory.exe] *)

open Magis

let profile cache label graph ftree schedule =
  let acc = Ftree.accounting cache graph ftree in
  let r =
    Simulator.run ~size_of:acc.size_of ~cost_of:acc.cost_of cache graph
      schedule
  in
  let mem = Lifetime.timeline r.analysis in
  let n = Array.length mem in
  Fmt.pr "%s: peak %.1f MB, latency %.2f ms@." label
    (float_of_int r.peak_mem /. 1e6)
    (r.latency *. 1e3);
  (* a coarse ASCII profile: 50 columns, peak-normalized *)
  let columns = 50 in
  let sample = max 1 (n / columns) in
  Fmt.pr "  [";
  Array.iteri
    (fun i m ->
      if i mod sample = 0 then
        let h = 9 * m / max 1 r.peak_mem in
        Fmt.pr "%c" (Char.chr (Char.code '0' + min 9 h)))
    mem;
  Fmt.pr "]@."

let () =
  let cache = Op_cost.create Hardware.default in
  let graph = Zoo.unet.build Zoo.Quick in
  let base = Simulator.run cache graph (Graph.program_order graph) in
  Fmt.pr "UNet training, batch 32@.";
  profile cache "PyTorch " graph Ftree.empty (Graph.program_order graph);
  let config = { Search.default_config with time_budget = 6.0 } in
  List.iter
    (fun (label, ratio) ->
      let limit =
        int_of_float (float_of_int base.peak_mem *. ratio)
      in
      let r = Search.run ~config cache (Search.Min_latency { mem_limit = limit }) graph in
      profile cache label r.best.graph r.best.ftree r.best.schedule)
    [ ("MAGIS-80%", 0.8); ("MAGIS-60%", 0.6) ]
