(** Edge deployment (the paper's mobile motivation): batch-1
    high-resolution U-Net inference on a phone-class device.  Batch
    fission has no leverage at batch 1 — the *spatial* (halo) fission
    extension splits the high-resolution convolution chains along the
    image height instead.

    Run with: [dune exec examples/edge_inference.exe] *)

open Magis

let mb b = float_of_int b /. 1e6

let () =
  let cache = Op_cost.create Hardware.mobile in
  Fmt.pr "device: %a@." Hardware.pp Hardware.mobile;
  let graph = Unet.srnet_inference ~image:512 ~channels:64 ~depth:12 () in
  let order = Graph.program_order graph in
  let base = Simulator.run cache graph order in
  Fmt.pr "VDSR super-resolution, batch 1, 512x512: %d ops, peak %.1f MB, %.1f ms@."
    (Graph.n_nodes graph) (mb base.peak_mem) (base.latency *. 1e3);

  (* spatial fission candidates: stride-1 same-conv chains *)
  let cands = Spatial.candidates graph in
  Fmt.pr "%d spatially splittable convolution chains@." (List.length cands);

  (* split the longest chains and measure the real expanded graphs *)
  let split n =
    let g =
      List.fold_left
        (fun g (f : Spatial.t) ->
          let f = { f with n } in
          if Spatial.is_valid g f then (Spatial.expand g f).graph else g)
        graph
        (Util.take 3 cands)
    in
    let order = Reorder.schedule ~max_states:0 g in
    let r = Simulator.run cache g order in
    Fmt.pr "  split x%d: %3d ops, peak %.1f MB (%.0f%%), %.1f ms (%+.1f%%)@."
      n (Graph.n_nodes g) (mb r.peak_mem)
      (100.0 *. float_of_int r.peak_mem /. float_of_int base.peak_mem)
      (r.latency *. 1e3)
      (100.0 *. (r.latency -. base.latency) /. base.latency)
  in
  List.iter split [ 2; 4 ];

  (* and the coordinated optimizer on the same graph, for comparison *)
  let config = { Search.default_config with time_budget = 5.0 } in
  let r = Search.optimize_memory ~config cache ~overhead:0.10 graph in
  Fmt.pr "MAGIS (graph scheduling only, batch=1): peak %.1f MB (%.0f%%), %+.1f%%@."
    (mb r.best.peak_mem)
    (100.0 *. float_of_int r.best.peak_mem /. float_of_int base.peak_mem)
    (100.0 *. (r.best.latency -. base.latency) /. base.latency)
