open Magis
open Helpers
module Int_set = Util.Int_set

let all_members g = Int_set.of_list (Graph.node_ids g)

let test_partition_covers () =
  let g = mlp_training () in
  let members = all_members g in
  let blocks = Partition.partition g members in
  let union =
    List.fold_left Int_set.union Int_set.empty blocks
  in
  Alcotest.(check bool) "blocks cover all members" true
    (Int_set.equal union members);
  (* blocks are disjoint *)
  let total = List.fold_left (fun a b -> a + Int_set.cardinal b) 0 blocks in
  Alcotest.(check int) "disjoint" (Int_set.cardinal members) total

let test_partition_respects_dependencies () =
  let g = mlp_training () in
  let blocks = Partition.partition g (all_members g) in
  (* concatenating block-local topological orders yields a valid global
     order *)
  let order =
    List.concat_map
      (fun b -> List.filter (fun v -> Int_set.mem v b) (Graph.topo_order g))
      blocks
  in
  valid_order_of g order

let test_nw_values () =
  let g, x, l, r, j = diamond () in
  (* l and r are independent of each other: nw = 1 *)
  Alcotest.(check int) "nw l" 1 (Partition.nw g l);
  Alcotest.(check int) "nw r" 1 (Partition.nw g r);
  Alcotest.(check int) "nw x" 0 (Partition.nw g x);
  Alcotest.(check int) "nw j" 0 (Partition.nw g j)

let test_pinned () =
  let g = mlp_training () in
  Graph.iter
    (fun n ->
      if Op.is_weight n.op then
        Alcotest.(check bool) "weight pinned" true (Partition.pinned g n.id))
    g;
  let out = List.hd (Graph.outputs g) in
  Alcotest.(check bool) "output pinned" true (Partition.pinned g out)

let test_greedy_valid_and_not_worse () =
  let g = mlp_training () in
  let size_of v = Lifetime.default_size g v in
  let order = Reorder.greedy_schedule ~size_of g (all_members g) in
  valid_order_of g order;
  let p_greedy = Lifetime.peak_memory (Lifetime.analyze g order) in
  let p_topo =
    Lifetime.peak_memory (Lifetime.analyze g (Graph.topo_order g))
  in
  Alcotest.(check bool) "greedy not worse than topo" true (p_greedy <= p_topo)

let test_dp_optimal_on_skip_ladder () =
  (* a ladder of independent branches: DP should find the optimal
     interleaving *)
  let b = Builder.create () in
  let x = Builder.input b [ 100 ] ~dtype:Shape.F32 in
  let branches =
    List.init 4 (fun _ ->
        let r = Builder.relu b x in
        Builder.relu b r)
  in
  let j =
    List.fold_left (fun acc v -> Builder.add b acc v) (List.hd branches)
      (List.tl branches)
  in
  let g = Builder.finish b in
  ignore j;
  let size_of v = Lifetime.default_size g v in
  match Reorder.dp_schedule ~max_states:50_000 ~size_of g (all_members g) with
  | None -> Alcotest.fail "DP exceeded budget"
  | Some order ->
      valid_order_of g order;
      let p_dp = Lifetime.peak_memory (Lifetime.analyze g order) in
      let greedy = Reorder.greedy_schedule ~size_of g (all_members g) in
      let p_greedy = Lifetime.peak_memory (Lifetime.analyze g greedy) in
      Alcotest.(check bool) "DP <= greedy" true (p_dp <= p_greedy)

let test_dp_budget_exhaustion () =
  (* a wide independent layer makes the DP state space explode *)
  let b = Builder.create () in
  let x = Builder.input b [ 10 ] ~dtype:Shape.F32 in
  let mids = List.init 12 (fun _ -> Builder.relu b x) in
  let _ =
    List.fold_left (fun acc v -> Builder.add b acc v) (List.hd mids)
      (List.tl mids)
  in
  let g = Builder.finish b in
  let size_of v = Lifetime.default_size g v in
  Alcotest.(check bool) "tiny budget gives up" true
    (Reorder.dp_schedule ~max_states:3 ~size_of g (all_members g) = None)

let test_schedule_beats_topo_on_unet () =
  let g = Zoo.unet.build Zoo.Quick in
  let order = Reorder.schedule ~max_states:4_000 g in
  valid_order_of g order;
  let p_sched = Lifetime.peak_memory (Lifetime.analyze g order) in
  let p_topo = Lifetime.peak_memory (Lifetime.analyze g (Graph.topo_order g)) in
  (* the DP-backed scheduler should not lose much to program order and
     usually wins; the greedy fallback alone may be slightly worse *)
  Alcotest.(check bool)
    (Printf.sprintf "within 5%% of topo (sched %d, topo %d)" p_sched p_topo)
    true
    (float_of_int p_sched <= 1.05 *. float_of_int p_topo)

let test_schedule_members_subset () =
  let g = mlp_training () in
  let order = Graph.topo_order g in
  let members = Int_set.of_list (Util.take 6 order) in
  let size_of v = Lifetime.default_size g v in
  let sub = Reorder.schedule_members ~max_states:0 ~size_of g members in
  check_sorted "schedules exactly the members" (Int_set.elements members) sub

let suite =
  [
    tc "partition covers and is disjoint" test_partition_covers;
    tc "partition respects dependencies" test_partition_respects_dependencies;
    tc "narrow-waist values" test_nw_values;
    tc "pinned nodes" test_pinned;
    tc "greedy valid and not worse than topo" test_greedy_valid_and_not_worse;
    tc "DP optimal on independent branches" test_dp_optimal_on_skip_ladder;
    tc "DP budget exhaustion" test_dp_budget_exhaustion;
    tc "scheduler beats topo order on UNet" test_schedule_beats_topo_on_unet;
    tc "schedule_members covers subset" test_schedule_members_subset;
  ]
