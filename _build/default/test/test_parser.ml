open Magis
open Helpers

let roundtrip name g =
  let text = Export.to_text g in
  match Program_parser.parse text with
  | Error e -> Alcotest.failf "%s: parse failed: %s" name e
  | Ok prog ->
      Alcotest.(check int) (name ^ ": node count") (Graph.n_nodes g)
        (Graph.n_nodes prog.graph);
      Alcotest.(check bool) (name ^ ": structure preserved") true
        (Wl_hash.equal_structure g prog.graph)

let test_roundtrip_small_graphs () =
  let g, _, _, _, _ = diamond () in
  roundtrip "diamond" g;
  let g, _, _ = attention () in
  roundtrip "attention" g;
  roundtrip "mlp training" (mlp_training ())

let test_roundtrip_all_workloads () =
  List.iter
    (fun (w : Zoo.workload) -> roundtrip w.name (w.build Zoo.Quick))
    Zoo.all

let test_roundtrip_with_swaps_and_schedule () =
  let b = Builder.create () in
  let x = Builder.input b [ 64 ] ~dtype:Shape.F32 in
  let r = Builder.relu b x in
  let st = Builder.op b Op.Store [ r ] in
  let ld = Builder.op b Op.Load [ st ] in
  let t = Builder.tanh_ b r in
  let _ = Builder.add b t ld in
  let g = Builder.finish b in
  let schedule = Graph.topo_order g in
  let text = Export.to_text_with_schedule g ~schedule in
  match Program_parser.parse text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok prog ->
      Alcotest.(check bool) "structure preserved" true
        (Wl_hash.equal_structure g prog.graph);
      (match prog.schedule with
      | None -> Alcotest.fail "schedule header lost"
      | Some s ->
          Alcotest.(check int) "schedule length" (List.length schedule)
            (List.length s);
          Alcotest.(check bool) "remapped schedule valid" true
            (Graph.is_valid_order prog.graph s))

let test_parse_errors () =
  let bad = [
    "%0 = frobnicate f32[2] () \"\"";       (* unknown op *)
    "%0 = relu f32[2] (99) \"\"";            (* unknown input *)
    "%0 = relu zz[2] () \"\"";               (* bad dtype *)
  ] in
  List.iter
    (fun text ->
      match Program_parser.parse text with
      | Ok _ -> Alcotest.failf "expected failure for %s" text
      | Error _ -> ())
    bad

let test_chrome_trace () =
  let c = cache () in
  let b = Builder.create () in
  let x = Builder.input b [ 4096 ] ~dtype:Shape.F32 in
  let r = Builder.relu b x in
  let st = Builder.op b Op.Store [ r ] in
  let ld = Builder.op b Op.Load [ st ] in
  let _ = Builder.add b r ld in
  let g = Builder.finish b in
  let trace = Export.to_chrome_trace c g ~schedule:(Graph.topo_order g) in
  let contains needle =
    let lh = String.length trace and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub trace i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "compute lane" true (contains "\"tid\": 1");
  Alcotest.(check bool) "copy lane" true (contains "\"tid\": 2");
  Alcotest.(check bool) "memory counter" true (contains "device memory");
  Alcotest.(check bool) "json-ish" true
    (trace.[0] = '[' && trace.[String.length trace - 2] = ']')

let suite =
  [
    tc "round-trip small graphs" test_roundtrip_small_graphs;
    tc "round-trip all workloads" test_roundtrip_all_workloads;
    tc "round-trip swaps + schedule" test_roundtrip_with_swaps_and_schedule;
    tc "parse errors" test_parse_errors;
    tc "chrome trace" test_chrome_trace;
  ]
