open Magis
open Helpers

let test_renumbering_invariance () =
  (* the same structure built in a different insertion order hashes
     identically *)
  let build order_swapped =
    let b = Builder.create () in
    let x = Builder.input b [ 8 ] ~dtype:Shape.F32 in
    let l, r =
      if order_swapped then
        let r = Builder.tanh_ b x in
        let l = Builder.relu b x in
        (l, r)
      else
        let l = Builder.relu b x in
        let r = Builder.tanh_ b x in
        (l, r)
    in
    let _ = Builder.add b l r in
    Builder.finish b
  in
  Alcotest.(check bool) "same hash" true
    (Wl_hash.equal_structure (build false) (build true))

let test_operand_order_matters () =
  (* sub(a,b) and sub(b,a) must differ *)
  let build swapped =
    let b = Builder.create () in
    let x = Builder.input b [ 8 ] ~dtype:Shape.F32 in
    let l = Builder.relu b x in
    let r = Builder.tanh_ b x in
    let _ = if swapped then Builder.sub b r l else Builder.sub b l r in
    Builder.finish b
  in
  Alcotest.(check bool) "different hash" false
    (Wl_hash.equal_structure (build false) (build true))

let test_shape_matters () =
  let build n =
    let g, _, _, _, _ = chain3 ~n () in
    g
  in
  Alcotest.(check bool) "different sizes differ" false
    (Wl_hash.equal_structure (build 16) (build 32))

let test_op_matters () =
  let g1, _, _, _, _ = chain3 () in
  let b = Builder.create () in
  let x = Builder.input b [ 16 ] ~dtype:Shape.F32 in
  let t1 = Builder.relu b x in
  let t2 = Builder.gelu b t1 in
  let _ = Builder.relu b t2 in
  let g2 = Builder.finish b in
  Alcotest.(check bool) "gelu in the middle differs" false
    (Wl_hash.equal_structure g1 g2)

let test_extension_changes_hash () =
  let g, x, _, _, _ = diamond () in
  let h0 = Wl_hash.hash g in
  let g2, _ = Graph.add g (Op.Unary Op.Neg) [ x ] in
  Alcotest.(check bool) "adding a node changes hash" true (h0 <> Wl_hash.hash g2)

let test_models_hash_deterministically () =
  let g1 = mlp_training () in
  let g2 = mlp_training () in
  Alcotest.(check bool) "deterministic builders" true
    (Wl_hash.equal_structure g1 g2)

let suite =
  [
    tc "renumbering invariance" test_renumbering_invariance;
    tc "operand order matters" test_operand_order_matters;
    tc "shape matters" test_shape_matters;
    tc "op matters" test_op_matters;
    tc "extension changes hash" test_extension_changes_hash;
    tc "deterministic across builds" test_models_hash_deterministically;
  ]
