(** Numerical equivalence of graph transformations: the optimized graph
    must compute the same values as the original, checked on the
    reference interpreter ({!Magis_exec.Interp}) with deterministic
    inputs.  This is the strongest soundness evidence for the rewrites:
    shape preservation alone would not catch a mis-sliced fission part or
    a halo off by one row. *)

open Magis
open Helpers
module Interp = Magis_exec.Interp
module Int_map = Util.Int_map
module Int_set = Util.Int_set

let tolerance = 1e-4

(** Shared environment: the same node id gets the same tensor in both
    graphs (transformations keep original input ids). *)
let env_of g = Interp.default_env g

(** Check that [outputs_pairs] (old node, new node) agree between the two
    graphs under a shared input environment. *)
let check_outputs ~msg g g' pairs =
  let env = env_of g in
  let vals = Interp.run g ~env in
  let vals' = Interp.run g' ~env in
  List.iter
    (fun (old_v, new_v) ->
      let a = Hashtbl.find vals old_v in
      let b = Hashtbl.find vals' new_v in
      let d = Interp.max_diff a b in
      Alcotest.(check bool)
        (Printf.sprintf "%s: node %d ~ %d (max diff %.2e)" msg old_v new_v d)
        true (d < tolerance))
    pairs

let identity_pairs g g' =
  List.filter_map
    (fun v -> if Graph.mem g' v then Some (v, v) else None)
    (Graph.outputs g)

(* ------------------------------------------------------------------ *)
(* Fission expansion                                                   *)
(* ------------------------------------------------------------------ *)

let batch_fission_of g ~input_label =
  let x =
    List.find
      (fun v -> (Graph.node g v).label = input_label)
      (Graph.inputs g)
  in
  let dg = Dgraph.build g in
  let comp =
    List.find
      (fun c -> Dgraph.Dnode_set.mem { Dgraph.node = x; dim = 1 } c)
      (Dgraph.components dg)
  in
  let members =
    Int_set.filter
      (fun v -> not (Op.is_input (Graph.op g v)))
      (Dgraph.graph_nodes_of_component comp)
  in
  let dims = Option.get (Dgraph.restrict comp members) in
  { Fission.members; dims; n = 2 }

let test_fission_expansion_numeric () =
  (* the Fig. 5 scenario: batch fission of an MLP training step, including
     the weight gradients merged by addition *)
  let g = mlp_training ~batch:8 ~hidden:16 () in
  let f = batch_fission_of g ~input_label:"x" in
  List.iter
    (fun n ->
      let f = Fission.with_n f n in
      if Fission.is_valid g f then begin
        let e = Fission.expand g f in
        let pairs =
          List.map
            (fun v ->
              match Int_map.find_opt v e.replacements with
              | Some r -> (v, r)
              | None -> (v, v))
            (Graph.outputs g)
        in
        check_outputs ~msg:(Printf.sprintf "fission n=%d" n) g e.graph pairs
      end)
    [ 2; 4; 8 ]

let test_fission_attention_numeric () =
  (* batch fission through a full attention block (bmm, softmax, reshape,
     transpose, layer norms) *)
  let g, x, y = attention ~batch:4 ~seq:8 ~hidden:16 ~heads:2 () in
  ignore x;
  let f = batch_fission_of g ~input_label:"x" in
  let f = Fission.with_n f 2 in
  if Fission.is_valid g f then begin
    let e = Fission.expand g f in
    let pairs =
      [ (match Int_map.find_opt y e.replacements with
         | Some r -> (y, r)
         | None -> (y, y)) ]
    in
    check_outputs ~msg:"attention batch fission" g e.graph pairs
  end

(* ------------------------------------------------------------------ *)
(* Spatial (halo) fission                                              *)
(* ------------------------------------------------------------------ *)

let test_spatial_fission_numeric () =
  (* the critical halo-correctness check: a haloed split of a same-conv
     chain must match the unsplit chain *exactly* on every pixel *)
  let b = Builder.create () in
  let x = Builder.input b [ 1; 2; 16; 16 ] ~dtype:Shape.F32 in
  let w1 = Builder.weight b [ 4; 2; 3; 3 ] ~dtype:Shape.F32 in
  let c1 = Builder.conv2d ~padding:1 b x w1 in
  let r1 = Builder.relu b c1 in
  let w2 = Builder.weight b [ 4; 4; 3; 3 ] ~dtype:Shape.F32 in
  let c2 = Builder.conv2d ~padding:1 b r1 w2 in
  let r2 = Builder.tanh_ b c2 in
  let g = Builder.finish b in
  List.iter
    (fun n ->
      let f = { Spatial.chain = [ c1; r1; c2; r2 ]; axis = 2; n } in
      if Spatial.is_valid g f then begin
        let e = Spatial.expand g f in
        check_outputs
          ~msg:(Printf.sprintf "spatial n=%d" n)
          g e.graph
          [ (r2, e.replacement) ]
      end)
    [ 2; 4 ]

let test_spatial_rejects_extent_changing_pool () =
  (* unpadded stride-1 pooling shrinks the extent: such chains must be
     rejected (the bug this numeric suite originally caught) *)
  let b = Builder.create () in
  let x = Builder.input b [ 1; 3; 12; 12 ] ~dtype:Shape.F32 in
  let w = Builder.weight b [ 4; 3; 3; 3 ] ~dtype:Shape.F32 in
  let c = Builder.conv2d ~padding:1 b x w in
  let p = Builder.op b (Op.Pool2d { p_kind = Op.P_avg; kernel = 3; p_stride = 1 }) [ c ] in
  let r = Builder.relu b p in
  let g = Builder.finish b in
  Alcotest.(check bool) "extent-changing pool rejected" false
    (Spatial.is_valid g { Spatial.chain = [ c; p; r ]; axis = 2; n = 2 })

(* ------------------------------------------------------------------ *)
(* Scheduling-based and TASO rewrites                                  *)
(* ------------------------------------------------------------------ *)

let rewrites_of rule g =
  let order = Graph.topo_order g in
  let pos = Hashtbl.create 64 in
  List.iteri (fun i v -> Hashtbl.replace pos v i) order;
  let c = cache () in
  let res = Simulator.run c g order in
  let ctx =
    { Rule.default_ctx with
      hotspots = Lifetime.hotspots res.analysis;
      schedule_pos = (fun v -> Hashtbl.find_opt pos v);
      max_per_rule = 8 }
  in
  (rule : Rule.t).apply ctx g

let test_all_rules_numeric () =
  let g = mlp_training ~batch:16 ~hidden:16 () in
  List.iter
    (fun rule ->
      List.iteri
        (fun i (rw : Rule.rewrite) ->
          if i < 3 then
            check_outputs
              ~msg:(Printf.sprintf "%s rewrite %d" rw.rule i)
              g rw.graph (identity_pairs g rw.graph))
        (rewrites_of rule g))
    (Sched_rules.all @ Taso_rules.all)

let test_rules_numeric_on_attention () =
  let g, _, _ = attention ~batch:4 ~seq:8 ~hidden:16 ~heads:2 () in
  List.iter
    (fun rule ->
      List.iteri
        (fun i (rw : Rule.rewrite) ->
          if i < 2 then
            check_outputs
              ~msg:(Printf.sprintf "%s on attention %d" rw.rule i)
              g rw.graph (identity_pairs g rw.graph))
        (rewrites_of rule g))
    (Sched_rules.all @ Taso_rules.all)

let test_qkv_merge_numeric () =
  let b = Builder.create () in
  let x = Builder.input b [ 4; 8 ] ~dtype:Shape.F32 in
  let mk () = Builder.weight b [ 8; 8 ] ~dtype:Shape.F32 in
  let q = Builder.dense b x (mk ()) in
  let k = Builder.dense b x (mk ()) in
  let v = Builder.dense b x (mk ()) in
  let out = Builder.add b (Builder.add b q k) v in
  ignore out;
  let g = Builder.finish b in
  List.iter
    (fun (rw : Rule.rewrite) ->
      check_outputs ~msg:"qkv merge" g rw.graph (identity_pairs g rw.graph))
    (rewrites_of Taso_rules.merge_parallel g)

(* ------------------------------------------------------------------ *)
(* Interpreter self-checks                                             *)
(* ------------------------------------------------------------------ *)

let test_interp_known_values () =
  (* 2x2 matmul with hand-computed result *)
  let b = Builder.create () in
  let a = Builder.input b [ 2; 2 ] ~dtype:Shape.F32 in
  let w = Builder.input b [ 2; 2 ] ~dtype:Shape.F32 in
  let m = Builder.matmul b a w in
  let g = Builder.finish b in
  let env v =
    if v = a then { Interp.shape = shape [ 2; 2 ]; data = [| 1.; 2.; 3.; 4. |] }
    else { Interp.shape = shape [ 2; 2 ]; data = [| 5.; 6.; 7.; 8. |] }
  in
  let vals = Interp.run g ~env in
  Alcotest.(check (array (float 1e-9))) "matmul values"
    [| 19.; 22.; 43.; 50. |]
    (Hashtbl.find vals m).data

let test_interp_softmax_rows_sum_to_one () =
  let b = Builder.create () in
  let x = Builder.input b [ 3; 5 ] ~dtype:Shape.F32 in
  let s = Builder.softmax b ~axis:1 x in
  let g = Builder.finish b in
  let vals = Interp.run g ~env:(Interp.default_env g) in
  let t = Hashtbl.find vals s in
  for row = 0 to 2 do
    let sum = ref 0.0 in
    for j = 0 to 4 do
      sum := !sum +. t.data.((row * 5) + j)
    done;
    Alcotest.(check (float 1e-6)) "row sums to 1" 1.0 !sum
  done

let test_interp_conv_identity_kernel () =
  (* a 1x1 identity kernel reproduces the input *)
  let b = Builder.create () in
  let x = Builder.input b [ 1; 1; 4; 4 ] ~dtype:Shape.F32 in
  let w = Builder.input b [ 1; 1; 1; 1 ] ~dtype:Shape.F32 in
  let c = Builder.conv2d b x w in
  let g = Builder.finish b in
  let env v =
    if v = w then { Interp.shape = shape [ 1; 1; 1; 1 ]; data = [| 1.0 |] }
    else Interp.random ~seed:3 (shape [ 1; 1; 4; 4 ])
  in
  let vals = Interp.run g ~env in
  Alcotest.(check (float 1e-9)) "identity conv" 0.0
    (Interp.max_diff (Hashtbl.find vals x) (Hashtbl.find vals c))

let test_parser_roundtrip_numeric () =
  (* a parsed-back program computes the same values (ids are remapped, so
     the environment maps through id_map) *)
  let g = mlp_training ~batch:4 ~hidden:8 () in
  let text = Export.to_text g in
  match Program_parser.parse text with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok prog ->
      let env = env_of g in
      let inverse = Hashtbl.create 16 in
      Hashtbl.iter (fun old new_ -> Hashtbl.replace inverse new_ old) prog.id_map;
      let env' v = env (Hashtbl.find inverse v) in
      let vals = Interp.run g ~env in
      let vals' = Interp.run prog.graph ~env:env' in
      List.iter
        (fun old_out ->
          let new_out = Hashtbl.find prog.id_map old_out in
          let d =
            Interp.max_diff (Hashtbl.find vals old_out)
              (Hashtbl.find vals' new_out)
          in
          Alcotest.(check bool)
            (Printf.sprintf "output %d (diff %.2e)" old_out d)
            true (d < tolerance))
        (Graph.outputs g)

let test_expansion_then_rules_numeric () =
  (* transformations compose: fission expansion followed by a swap rewrite
     still computes the original values *)
  let g = mlp_training ~batch:8 ~hidden:16 () in
  let f = batch_fission_of g ~input_label:"x" in
  let e = Fission.expand g (Fission.with_n f 2) in
  let g' = e.graph in
  List.iteri
    (fun i (rw : Rule.rewrite) ->
      if i < 2 then begin
        let env = env_of g in
        let vals = Interp.run g ~env in
        let vals' = Interp.run rw.graph ~env in
        List.iter
          (fun old_out ->
            let new_out =
              match Int_map.find_opt old_out e.replacements with
              | Some r -> r
              | None -> old_out
            in
            if Graph.mem rw.graph new_out then
              let d =
                Interp.max_diff (Hashtbl.find vals old_out)
                  (Hashtbl.find vals' new_out)
              in
              Alcotest.(check bool)
                (Printf.sprintf "composed output %d (diff %.2e)" old_out d)
                true (d < tolerance))
          (Graph.outputs g)
      end)
    (rewrites_of Sched_rules.swapping g')

let prop_spatial_random_configs =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"spatial fission exact on random configs"
       ~count:20
       QCheck2.Gen.(pair (int_range 0 1000) (int_range 1 3))
       (fun (seed, depth) ->
         let st = Random.State.make [| seed |] in
         let image = 8 * (1 + Random.State.int st 3) in
         let ch = 1 + Random.State.int st 3 in
         let b = Builder.create () in
         let x = Builder.input b [ 1; ch; image; image ] ~dtype:Shape.F32 in
         let h = ref x and c = ref ch in
         let chain = ref [] in
         for _ = 1 to depth do
           let oc = 1 + Random.State.int st 3 in
           let w = Builder.weight b [ oc; !c; 3; 3 ] ~dtype:Shape.F32 in
           let conv = Builder.conv2d ~padding:1 b !h w in
           let act = Builder.relu b conv in
           chain := act :: conv :: !chain;
           h := act;
           c := oc
         done;
         let g = Builder.finish b in
         let chain = List.rev !chain in
         let f = { Spatial.chain; axis = 2; n = 2 } in
         if not (Spatial.is_valid g f) then true
         else begin
           let e = Spatial.expand g f in
           let env = Interp.default_env g in
           let a = Interp.run g ~env in
           let b' = Interp.run e.graph ~env in
           let last = List.nth chain (List.length chain - 1) in
           Interp.max_diff (Hashtbl.find a last)
             (Hashtbl.find b' e.replacement)
           < 1e-4
         end))

let suite =
  [
    prop_spatial_random_configs;
    tc "parser round-trip computes identically" test_parser_roundtrip_numeric;
    tc "expansion + swap compose" test_expansion_then_rules_numeric;
    tc "fission expansion (Fig. 5) matches numerically" test_fission_expansion_numeric;
    tc "attention batch fission matches" test_fission_attention_numeric;
    tc "spatial halo fission matches exactly" test_spatial_fission_numeric;
    tc "spatial rejects extent-changing pool" test_spatial_rejects_extent_changing_pool;
    tc "all rules preserve values (MLP)" test_all_rules_numeric;
    tc "all rules preserve values (attention)" test_rules_numeric_on_attention;
    tc "QKV merge preserves values" test_qkv_merge_numeric;
    tc "interpreter: known matmul" test_interp_known_values;
    tc "interpreter: softmax normalizes" test_interp_softmax_rows_sum_to_one;
    tc "interpreter: identity conv" test_interp_conv_identity_kernel;
  ]
