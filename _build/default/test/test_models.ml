open Magis
open Helpers
module Int_set = Util.Int_set

let check_training_graph name g =
  (* structural sanity common to every workload *)
  let order = Graph.topo_order g in
  Alcotest.(check int) (name ^ ": order covers graph") (Graph.n_nodes g)
    (List.length order);
  Alcotest.(check bool) (name ^ ": has weights") true (Graph.weight_bytes g > 0);
  let _, backward = Chain.split g in
  Alcotest.(check bool) (name ^ ": has a backward pass") true
    (not (Int_set.is_empty backward));
  (* gradients exist: at least one non-input output *)
  Alcotest.(check bool) (name ^ ": has gradient outputs") true
    (List.exists
       (fun v -> not (Op.is_input (Graph.op g v)))
       (Graph.outputs g))

let test_all_quick_workloads_build () =
  List.iter
    (fun (w : Zoo.workload) ->
      check_training_graph w.name (w.build Zoo.Quick))
    Zoo.all

let test_zoo_find () =
  Alcotest.(check string) "case-insensitive" "UNet" (Zoo.find "unet").name;
  Alcotest.(check bool) "unknown raises" true
    (try ignore (Zoo.find "alexnet"); false with Invalid_argument _ -> true)

let test_table2_configs () =
  let batches =
    List.map (fun (w : Zoo.workload) -> (w.name, w.batch)) Zoo.all
  in
  Alcotest.(check (list (pair string int))) "Table 2 batches"
    [ ("ResNet-50", 64); ("BERT-base", 32); ("ViT-base", 64); ("UNet", 32);
      ("UNet++", 16); ("GPT-Neo", 32); ("BTLM", 32) ]
    batches

let test_resnet_structure () =
  let g = Resnet.build ~batch:2 ~image:64 ~blocks:[ 1; 1; 1; 1 ] () in
  let count p = Graph.fold (fun n acc -> if p n.Graph.op then acc + 1 else acc) g 0 in
  let is_conv = function Op.Conv2d _ -> true | _ -> false in
  (* stem + 4 stages x (3 convs + downsample convs) + classifier grads *)
  Alcotest.(check bool) "enough convolutions" true (count is_conv >= 13);
  let is_bn = function Op.Batch_norm -> true | _ -> false in
  Alcotest.(check bool) "batch norms present" true (count is_bn >= 13)

let test_transformer_block_shapes () =
  let g, x, y = attention () in
  Alcotest.(check bool) "block preserves shape" true
    (Shape.equal_dims (Graph.shape g x) (Graph.shape g y));
  (* attention internals present *)
  let has name =
    Graph.fold (fun n acc -> acc || Op.name n.op = name) g false
  in
  Alcotest.(check bool) "softmax present" true (has "softmax(3)");
  Alcotest.(check bool) "bmm present" true (has "bmm_tb")

let test_gpt_dtype_is_bf16 () =
  let g = Zoo.gpt_neo.build Zoo.Quick in
  (* the token embedding table is bf16 *)
  let emb =
    Graph.fold
      (fun n acc -> if n.label = "tok_emb" then Some n else acc)
      g None
  in
  match emb with
  | Some n ->
      Alcotest.(check string) "bf16 weights" "bf16"
        (Shape.dtype_name (Shape.dtype n.shape))
  | None -> Alcotest.fail "no token embedding"

let test_unet_skip_connections () =
  let g = Unet.build_unet ~batch:2 ~image:64 ~base:8 ~depth:3 () in
  let concats =
    Graph.fold
      (fun n acc ->
        match n.op with Op.Concat _ -> acc + 1 | _ -> acc)
      g 0
  in
  (* one concat per decoder level, forward only (backward uses slices) *)
  Alcotest.(check bool) "3 decoder concats" true (concats >= 3)

let test_unetpp_denser_than_unet () =
  let u = Unet.build_unet ~batch:2 ~image:64 ~base:8 ~depth:3 () in
  let upp = Unet.build_unetpp ~batch:2 ~image:64 ~base:8 ~depth:3 () in
  let concats g =
    Graph.fold
      (fun n acc -> match n.Graph.op with Op.Concat _ -> acc + 1 | _ -> acc)
      g 0
  in
  Alcotest.(check bool) "U-Net++ has more skip concats" true
    (concats upp > concats u)

let test_randnet_deterministic_and_distinct () =
  let g1 = Randnet.build ~cfg:{ Randnet.default with seed = 5 } () in
  let g2 = Randnet.build ~cfg:{ Randnet.default with seed = 5 } () in
  let g3 = Randnet.build ~cfg:{ Randnet.default with seed = 6 } () in
  Alcotest.(check bool) "same seed same graph" true
    (Wl_hash.equal_structure g1 g2);
  Alcotest.(check bool) "different seed different graph" false
    (Wl_hash.equal_structure g1 g3)

let test_full_scale_graphs_larger () =
  (* spot-check one workload: the full config has strictly more nodes *)
  let q = Zoo.bert.build Zoo.Quick in
  let f = Zoo.bert.build Zoo.Full in
  Alcotest.(check bool) "full deeper than quick" true
    (Graph.n_nodes f > Graph.n_nodes q)

let test_full_scale_magnitudes_ordered () =
  (* peak memory at paper scale: BTLM > GPT-Neo > BERT, and GPT-Neo
     exceeds a 24 GB card (the paper's OOM observation) *)
  let c = cache () in
  let peak name =
    let g = (Zoo.find name).build Zoo.Full in
    (Simulator.run c g (Graph.program_order g)).peak_mem
  in
  let bert = peak "bert-base" and gpt = peak "gpt-neo" and btlm = peak "btlm" in
  Alcotest.(check bool) "BTLM > GPT-Neo" true (btlm > gpt);
  Alcotest.(check bool) "GPT-Neo > BERT" true (gpt > bert);
  Alcotest.(check bool) "GPT-Neo OOMs a 24GB card" true
    (gpt > Hardware.rtx3090.device_memory)

let test_srnet_structure () =
  let g = Unet.srnet_inference ~image:64 ~channels:8 ~depth:4 () in
  (* 1 + depth + 1 convolutions, all stride-1 same-padded *)
  let convs =
    Graph.fold
      (fun n acc ->
        match n.Graph.op with
        | Op.Conv2d { stride = 1; padding = 1 } -> acc + 1
        | _ -> acc)
      g 0
  in
  Alcotest.(check int) "six same convs" 6 convs

let test_densenet_structure () =
  let g = Unet.densenet_training ~batch:2 ~image:16 ~growth:4 ~layers:4 ~blocks:2 () in
  check_training_graph "DenseNet" g;
  (* dense connectivity: many concats whose widths grow along the block *)
  let concats =
    Graph.fold
      (fun n acc -> match n.Graph.op with Op.Concat _ -> acc + 1 | _ -> acc)
      g 0
  in
  Alcotest.(check bool) "dense concats" true (concats >= 6)

let suite =
  [
    tc "all quick workloads build" test_all_quick_workloads_build;
    tc "densenet structure" test_densenet_structure;
    tc "zoo lookup" test_zoo_find;
    tc "Table 2 configurations" test_table2_configs;
    tc "resnet structure" test_resnet_structure;
    tc "transformer block shapes" test_transformer_block_shapes;
    tc "gpt dtype bf16" test_gpt_dtype_is_bf16;
    tc "unet skip connections" test_unet_skip_connections;
    tc "unet++ denser skips" test_unetpp_denser_than_unet;
    tc "randnet determinism" test_randnet_deterministic_and_distinct;
    tc "full scale larger" test_full_scale_graphs_larger;
    tc "full scale magnitudes ordered" test_full_scale_magnitudes_ordered;
    tc "srnet structure" test_srnet_structure;
  ]
