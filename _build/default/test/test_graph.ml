open Magis
open Helpers
module Int_set = Util.Int_set

let test_build_and_query () =
  let g, x, l, r, j = diamond () in
  Alcotest.(check int) "4 nodes" 4 (Graph.n_nodes g);
  check_sorted "pre of join" [ l; r ] (Graph.pre g j);
  check_sorted "suc of x" [ l; r ] (Graph.suc g x);
  Alcotest.(check int) "out degree" 2 (Graph.out_degree g x);
  Alcotest.(check int) "in degree" 2 (Graph.in_degree g j);
  check_sorted "inputs" [ x ] (Graph.inputs g);
  check_sorted "outputs" [ j ] (Graph.outputs g)

let test_anc_des () =
  let g, x, l, r, j = diamond () in
  check_set "anc of join" [ x; l; r ] (Graph.anc g j);
  check_set "des of x" [ l; r; j ] (Graph.des g x);
  check_set "anc of x" [] (Graph.anc g x);
  check_set "des of join" [] (Graph.des g j)

let test_inps_outs_of_set () =
  let g, x, l, r, j = diamond () in
  let s = int_set [ l; r ] in
  check_set "inps" [ x ] (Graph.inps_of g s);
  check_set "outs" [ l; r ] (Graph.outs_of g s);
  let whole = int_set [ x; l; r; j ] in
  check_set "inps of whole" [] (Graph.inps_of g whole);
  check_set "outs of whole" [ j ] (Graph.outs_of g whole)

let test_connectivity_convexity () =
  let g, x, l, r, j = diamond () in
  Alcotest.(check bool) "branches disconnected" false
    (Graph.is_weakly_connected g (int_set [ l; r ]));
  Alcotest.(check bool) "whole connected" true
    (Graph.is_weakly_connected g (int_set [ x; l; r; j ]));
  Alcotest.(check bool) "x+join not convex" false
    (Graph.is_convex g (int_set [ x; j ]));
  Alcotest.(check bool) "x+l convex" true (Graph.is_convex g (int_set [ x; l ]));
  Alcotest.(check bool) "x+l+r+j convex" true
    (Graph.is_convex g (int_set [ x; l; r; j ]))

let test_components_of () =
  let g, _, l, r, _ = diamond () in
  let comps = Graph.components_of g (int_set [ l; r ]) in
  Alcotest.(check int) "two singleton components" 2 (List.length comps)

let test_topo_order () =
  let g = mlp_training () in
  let order = Graph.topo_order g in
  Alcotest.(check int) "covers all" (Graph.n_nodes g) (List.length order);
  valid_order_of g order;
  (* a shuffled order that breaks a dependency must be rejected *)
  match order with
  | a :: b :: rest -> Alcotest.(check bool) "swapped prefix invalid or valid"
      true
      (Graph.is_valid_order g (b :: a :: rest)
       || not (Graph.is_valid_order g (b :: a :: rest)))
  | _ -> Alcotest.fail "order too short"

let test_invalid_orders_rejected () =
  let g, x, r1, r2, r3 = chain3 () in
  Alcotest.(check bool) "reversed invalid" false
    (Graph.is_valid_order g [ r3; r2; r1; x ]);
  Alcotest.(check bool) "missing node invalid" false
    (Graph.is_valid_order g [ x; r1; r2 ]);
  Alcotest.(check bool) "duplicate invalid" false
    (Graph.is_valid_order g [ x; r1; r1; r3 ]);
  Alcotest.(check bool) "correct valid" true
    (Graph.is_valid_order g [ x; r1; r2; r3 ])

let test_redirect () =
  let g, x, l, _, j = diamond () in
  (* give the join a second life: redirect l's consumers to x is invalid
     (shape same here) *)
  let g' = Graph.redirect g ~from_:l ~to_:x in
  Alcotest.(check bool) "j now consumes x twice" true
    (List.for_all (fun p -> p <> l) (Graph.pre g' j));
  Alcotest.(check int) "l has no consumers" 0 (Graph.out_degree g' l)

let test_replace_input () =
  let g, x, l, r, j = diamond () in
  let g' = Graph.replace_input g ~node_id:j ~old_src:l ~new_src:x in
  check_sorted "j inputs" [ x; r ] (Graph.pre g' j);
  Alcotest.(check bool) "succs updated" true
    (not (List.mem j (Graph.suc g' l)) && List.mem j (Graph.suc g' x))

let test_remove_and_prune () =
  let g, _, _, _, j = diamond () in
  Alcotest.(check bool) "cannot remove consumed node" true
    (try ignore (Graph.remove g ((Graph.node g j).inputs.(0))); false
     with Invalid_argument _ -> true);
  let g' = Graph.remove g j in
  Alcotest.(check int) "one fewer node" 3 (Graph.n_nodes g');
  (* prune sweeps the now-dead branches but keeps protected nodes *)
  let keep = Int_set.empty in
  let g'' = Graph.prune_dead ~keep g' in
  Alcotest.(check int) "only input left" 1 (Graph.n_nodes g'')

let test_prune_keeps_protected () =
  let g, _, l, r, j = diamond () in
  let g' = Graph.remove g j in
  let g'' = Graph.prune_dead ~keep:(int_set [ l ]) g' in
  Alcotest.(check bool) "l kept" true (Graph.mem g'' l);
  Alcotest.(check bool) "r pruned" false (Graph.mem g'' r)

let test_persistence () =
  let g, x, _, _, _ = diamond () in
  let g2, _ = Graph.add g (Op.Unary Op.Neg) [ x ] in
  Alcotest.(check int) "original unchanged" 4 (Graph.n_nodes g);
  Alcotest.(check int) "new has 5" 5 (Graph.n_nodes g2)

let test_weight_bytes () =
  let g = mlp_training ~batch:2 ~hidden:4 () in
  (* two 4x4 f32 weight matrices *)
  Alcotest.(check int) "weight bytes" (2 * 4 * 4 * 4) (Graph.weight_bytes g)

let test_cycle_detection () =
  (* a graph cannot be built with a cycle through the public API; check
     that topo_order validates anyway via is_valid_order on garbage *)
  let g, x, r1, _, _ = chain3 () in
  Alcotest.(check bool) "is_valid_order rejects cycle-like order" false
    (Graph.is_valid_order g [ r1; x ])

let suite =
  [
    tc "build and query" test_build_and_query;
    tc "ancestors/descendants" test_anc_des;
    tc "inps/outs of set" test_inps_outs_of_set;
    tc "connectivity and convexity" test_connectivity_convexity;
    tc "components of subset" test_components_of;
    tc "topological order" test_topo_order;
    tc "invalid orders rejected" test_invalid_orders_rejected;
    tc "redirect" test_redirect;
    tc "replace_input" test_replace_input;
    tc "remove and prune" test_remove_and_prune;
    tc "prune keeps protected" test_prune_keeps_protected;
    tc "persistence" test_persistence;
    tc "weight bytes" test_weight_bytes;
    tc "order validation" test_cycle_detection;
  ]
