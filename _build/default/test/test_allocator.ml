open Magis
open Helpers

let analysis_of g = Lifetime.analyze g (Graph.topo_order g)

let test_valid_and_bounded () =
  let g = mlp_training ~batch:8 ~hidden:16 () in
  let a = analysis_of g in
  List.iter
    (fun strategy ->
      let p = Allocator.plan ~strategy a in
      Alcotest.(check bool) "no overlapping placements" true
        (Allocator.is_valid p);
      Alcotest.(check bool) "arena covers the live peak" true
        (p.arena_size >= p.peak_live))
    [ Allocator.Best_fit; Allocator.First_fit; Allocator.Bump ]

let test_best_fit_beats_bump () =
  let g = Zoo.unet.build Zoo.Quick in
  let a = analysis_of g in
  let best = Allocator.plan ~strategy:Allocator.Best_fit a in
  let bump = Allocator.plan ~strategy:Allocator.Bump a in
  Alcotest.(check bool) "reuse beats bump allocation" true
    (best.arena_size < bump.arena_size);
  Alcotest.(check bool) "bump arena = total bytes" true
    (bump.arena_size
    >= Graph.fold (fun n acc -> acc + Shape.size_bytes n.shape) g 0 / 2)

let test_fragmentation_reasonable () =
  let g = Zoo.bert.build Zoo.Quick in
  let p = Allocator.plan_schedule g (Graph.topo_order g) in
  Alcotest.(check bool)
    (Printf.sprintf "best-fit fragmentation <= 1.5 (got %.2f)"
       (Allocator.fragmentation p))
    true
    (Allocator.fragmentation p <= 1.5)

let test_chain_is_tight () =
  (* a unary chain reuses two slots: the arena equals the live peak *)
  let g, _, _, _, _ = chain3 ~n:256 () in
  let p = Allocator.plan_schedule g (Graph.topo_order g) in
  Alcotest.(check int) "no fragmentation on a chain" p.peak_live p.arena_size

let suite =
  [
    tc "valid and bounded" test_valid_and_bounded;
    tc "best-fit beats bump" test_best_fit_beats_bump;
    tc "fragmentation reasonable" test_fragmentation_reasonable;
    tc "chain is tight" test_chain_is_tight;
  ]
