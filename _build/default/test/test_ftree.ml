open Magis
open Helpers
module Int_set = Util.Int_set

let bert_state () =
  let c = cache () in
  let g =
    Transformer.build_lm
      { Transformer.batch = 8; seq_len = 16; hidden = 32; heads = 2;
        layers = 2; vocab = 64; dtype = Shape.F32 }
  in
  (c, g, Mstate.init c g)

let test_construction_properties () =
  let _, g, s = bert_state () in
  let t = s.ftree in
  Alcotest.(check bool) "non-empty tree" true (Ftree.n_entries t > 0);
  for i = 0 to Ftree.n_entries t - 1 do
    let e = Ftree.entry t i in
    (* every candidate starts disabled *)
    Alcotest.(check int) (Printf.sprintf "entry %d disabled" i) 1
      (Ftree.n_at t i);
    (* child subsets: S ⊆ S_parent *)
    if e.parent >= 0 then
      Alcotest.(check bool) (Printf.sprintf "entry %d nested in parent" i)
        true
        (Int_set.subset
           (Fission.members e.fission)
           (Fission.members (Ftree.fission_at t e.parent)));
    (* every candidate admits a valid fission number *)
    Alcotest.(check bool) (Printf.sprintf "entry %d feasible" i) true
      (Ftree.smallest_valid_n g e.fission <> None)
  done

let test_enable_starts_at_frontier () =
  let _, g, s = bert_state () in
  let t = s.ftree in
  let muts = Ftree.mutations g t in
  (* with everything disabled, only Enable mutations exist, and only on
     leaves *)
  List.iter
    (fun m ->
      match m with
      | Ftree.Enable i ->
          Alcotest.(check (list int)) (Printf.sprintf "enable %d is a leaf" i)
            [] (Ftree.entry t i).children
      | other ->
          Alcotest.failf "unexpected mutation %s"
            (Fmt.str "%a" Ftree.pp_mutation other))
    muts;
  Alcotest.(check bool) "at least one enable" true (muts <> [])

let test_mutation_cycle () =
  let _, g, s = bert_state () in
  let t = s.ftree in
  match Ftree.mutations g t with
  | Ftree.Enable i :: _ ->
      let t1 = Option.get (Ftree.apply g t (Ftree.Enable i)) in
      Alcotest.(check bool) "enabled" true (Ftree.is_enabled t1 i);
      (* frozen region covers the enabled members *)
      Alcotest.(check bool) "frozen region" true
        (Int_set.subset
           (Fission.members (Ftree.fission_at t1 i))
           (Ftree.frozen_region t1));
      (* disable undoes *)
      let t2 = Option.get (Ftree.apply g t1 (Ftree.Disable i)) in
      Alcotest.(check int) "disabled again" 1 (Ftree.n_at t2 i);
      (* mutate bumps n to the next divisor *)
      let t3 = Option.get (Ftree.apply g t1 (Ftree.Mutate i)) in
      Alcotest.(check bool) "n increased" true (Ftree.n_at t3 i > Ftree.n_at t1 i);
      (* lift moves the fission to the parent when there is one *)
      let e = Ftree.entry t1 i in
      if e.parent >= 0 then begin
        match Ftree.apply g t1 (Ftree.Lift i) with
        | Some t4 ->
            Alcotest.(check int) "child disabled" 1 (Ftree.n_at t4 i);
            Alcotest.(check bool) "parent enabled" true
              (Ftree.is_enabled t4 e.parent)
        | None -> () (* parent may be infeasible; acceptable *)
      end
  | _ -> Alcotest.fail "expected an enable mutation"

let test_enable_rejected_under_enabled_ancestor () =
  let _, g, s = bert_state () in
  let t = s.ftree in
  (* find a parent-child pair *)
  let pair = ref None in
  for i = 0 to Ftree.n_entries t - 1 do
    if (Ftree.entry t i).parent >= 0 && !pair = None then
      pair := Some (i, (Ftree.entry t i).parent)
  done;
  match !pair with
  | None -> () (* flat tree; nothing to test *)
  | Some (child, parent) -> (
      match Ftree.apply g t (Ftree.Enable parent) with
      | None -> () (* parent not enableable from scratch: fine *)
      | Some t1 ->
          Alcotest.(check bool) "child enable blocked" true
            (Ftree.apply g t1 (Ftree.Enable child) = None))

let test_fingerprint_changes_with_state () =
  let _, g, s = bert_state () in
  let t = s.ftree in
  match Ftree.mutations g t with
  | Ftree.Enable i :: _ ->
      let t1 = Option.get (Ftree.apply g t (Ftree.Enable i)) in
      Alcotest.(check bool) "fingerprint differs" true
        (Ftree.fingerprint t <> Ftree.fingerprint t1)
  | _ -> Alcotest.fail "expected enable"

let test_prune_after_rewrite () =
  let c, g, s = bert_state () in
  ignore c;
  let t = s.ftree in
  (* remove an output node (simulating a rewrite that dropped it) and
     check pruning keeps only valid entries *)
  let victim = List.hd (Graph.outputs g) in
  let g' = Graph.remove g victim in
  let t' = Ftree.prune g' t in
  for i = 0 to Ftree.n_entries t' - 1 do
    let e = Ftree.entry t' i in
    Alcotest.(check bool) "members all alive" true
      (Int_set.for_all (fun v -> Graph.mem g' v) (Fission.members e.fission))
  done

let test_refresh_preserves_enabled () =
  let c, g, s = bert_state () in
  ignore c;
  let t = s.ftree in
  match Ftree.mutations g t with
  | Ftree.Enable i :: _ ->
      let t1 = Option.get (Ftree.apply g t (Ftree.Enable i)) in
      let t2 = Ftree.refresh g ~old_tree:t1 ~hotspots:s.hotspots in
      let survived =
        List.exists
          (fun j ->
            Int_set.equal
              (Fission.members (Ftree.fission_at t2 j))
              (Fission.members (Ftree.fission_at t1 i))
            && Ftree.n_at t2 j = Ftree.n_at t1 i)
          (Ftree.enabled_indices t2)
      in
      Alcotest.(check bool) "enabled fission survives refresh" true survived
  | _ -> Alcotest.fail "expected enable"

let test_construct_naive_differs () =
  let _, g, _ = bert_state () in
  let t = Ftree.construct_naive ~seed:3 g in
  Alcotest.(check bool) "naive construction yields candidates" true
    (Ftree.n_entries t >= 0)

let test_accounting_identity_when_disabled () =
  let c, g, s = bert_state () in
  let acc = Ftree.accounting c g s.ftree in
  Alcotest.(check (float 0.0)) "no extra latency" 0.0 acc.extra_latency;
  Graph.iter
    (fun n ->
      Alcotest.(check int) "sizes unchanged" (Lifetime.default_size g n.id)
        (acc.size_of n.id))
    g

let suite =
  [
    tc "construction (Algorithm 1)" test_construction_properties;
    tc "enable starts at leaves" test_enable_starts_at_frontier;
    tc "mutation cycle" test_mutation_cycle;
    tc "enable under enabled ancestor rejected" test_enable_rejected_under_enabled_ancestor;
    tc "fingerprint tracks state" test_fingerprint_changes_with_state;
    tc "prune after rewrite" test_prune_after_rewrite;
    tc "refresh preserves enabled fissions" test_refresh_preserves_enabled;
    tc "naive construction (ablation)" test_construct_naive_differs;
    tc "accounting identity when disabled" test_accounting_identity_when_disabled;
  ]
