open Magis
open Helpers

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let count_lines_with code needle =
  String.split_on_char '\n' code
  |> List.filter (fun l -> contains l needle)
  |> List.length

let test_emit_structure () =
  let g = mlp_training ~batch:4 ~hidden:8 () in
  let schedule = Graph.topo_order g in
  let code = Pytorch_codegen.emit g ~schedule in
  Alcotest.(check bool) "imports torch" true (contains code "import torch");
  Alcotest.(check bool) "defines run" true (contains code "def run(inputs");
  Alcotest.(check bool) "defines input_specs" true
    (contains code "def input_specs");
  Alcotest.(check bool) "returns outputs" true (contains code "    return [");
  (* one assignment per non-swap node *)
  let assignments = count_lines_with code " = " in
  Alcotest.(check bool) "assignment per op" true
    (assignments >= Graph.n_nodes g)

let test_emit_covers_schedule_order () =
  let g, x, r1, r2, r3 = chain3 () in
  let code = Pytorch_codegen.emit g ~schedule:[ x; r1; r2; r3 ] in
  (* r1 assigned before r2 before r3 *)
  let idx v =
    let needle = Printf.sprintf "t%d = " v in
    let rec find i =
      if i + String.length needle > String.length code then -1
      else if String.sub code i (String.length needle) = needle then i
      else find (i + 1)
    in
    find 0
  in
  Alcotest.(check bool) "ordered" true (idx r1 < idx r2 && idx r2 < idx r3)

let test_dead_tensors_deleted () =
  let g, _, r1, _, _ = chain3 () in
  let code = Pytorch_codegen.emit g ~schedule:(Graph.topo_order g) in
  Alcotest.(check bool) "intermediates freed" true
    (contains code (Printf.sprintf "del t%d" r1))

let test_weights_never_deleted () =
  let g = mlp_training ~batch:4 ~hidden:8 () in
  let code = Pytorch_codegen.emit g ~schedule:(Graph.topo_order g) in
  Graph.iter
    (fun n ->
      if Op.is_weight n.op then
        Alcotest.(check bool)
          (Printf.sprintf "weight t%d not deleted" n.id)
          false
          (contains code (Printf.sprintf "del t%d " n.id)
          || contains code (Printf.sprintf "del t%d\n" n.id)))
    g

let test_swap_uses_streams () =
  let b = Builder.create () in
  let x = Builder.input b [ 1024 ] ~dtype:Shape.F32 in
  let r = Builder.relu b x in
  let st = Builder.op b Op.Store [ r ] in
  let ld = Builder.op b Op.Load [ st ] in
  let chain = Builder.tanh_ b r in
  let out = Builder.add b chain ld in
  ignore out;
  let g = Builder.finish b in
  let code = Pytorch_codegen.emit g ~schedule:(Graph.topo_order g) in
  Alcotest.(check bool) "copy stream declared" true
    (contains code "COPY_STREAM = torch.cuda.Stream()");
  Alcotest.(check bool) "swap out on the side stream" true
    (contains code "to(\"cpu\", non_blocking=True)");
  Alcotest.(check bool) "swap in waits for the event" true
    (contains code "_ev.wait()");
  Alcotest.(check bool) "compute waits for the copy stream" true
    (contains code "wait_stream(COPY_STREAM)")

let test_input_specs_cover_inputs () =
  let g = mlp_training ~batch:4 ~hidden:8 () in
  let code = Pytorch_codegen.emit g ~schedule:(Graph.topo_order g) in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "input %d in specs" v)
        true
        (contains code (Printf.sprintf "        %d: (" v)))
    (Graph.inputs g)

let test_emit_expanded () =
  let c = cache () in
  ignore c;
  let g =
    Transformer.build_lm
      { Transformer.batch = 4; seq_len = 8; hidden = 16; heads = 2;
        layers = 1; vocab = 32; dtype = Shape.F32 }
  in
  let s = Mstate.init (cache ()) g in
  (* enable the first candidate if any, then emit with expansion *)
  let ftree =
    match Ftree.mutations g s.ftree with
    | Ftree.Enable i :: _ -> Option.get (Ftree.apply g s.ftree (Ftree.Enable i))
    | _ -> s.ftree
  in
  let code =
    Pytorch_codegen.emit_expanded g ftree ~reschedule:Graph.topo_order
  in
  Alcotest.(check bool) "emits a runnable module" true
    (contains code "def run(inputs")

let test_dot_export () =
  let g, x, _, _, j = diamond () in
  let dot = Export.to_dot ~highlight:(int_set [ j ]) g in
  Alcotest.(check bool) "digraph header" true (contains dot "digraph");
  Alcotest.(check bool) "input node present" true
    (contains dot (Printf.sprintf "n%d [label=" x));
  Alcotest.(check bool) "edges present" true (contains dot "->");
  Alcotest.(check bool) "highlight colored" true (contains dot "lightsalmon")

let test_text_export_deterministic () =
  let g = mlp_training ~batch:2 ~hidden:4 () in
  Alcotest.(check string) "stable" (Export.to_text g) (Export.to_text g);
  let t = Export.to_text_with_schedule g ~schedule:(Graph.topo_order g) in
  Alcotest.(check bool) "has schedule header" true
    (contains t "# schedule:")

let test_summary () =
  let g = mlp_training ~batch:2 ~hidden:4 () in
  let s = Export.summary g in
  Alcotest.(check bool) "mentions node count" true
    (contains s (Printf.sprintf "nodes: %d" (Graph.n_nodes g)))

let suite =
  [
    tc "emit structure" test_emit_structure;
    tc "schedule order respected" test_emit_covers_schedule_order;
    tc "dead tensors deleted" test_dead_tensors_deleted;
    tc "weights never deleted" test_weights_never_deleted;
    tc "swap uses CUDA streams" test_swap_uses_streams;
    tc "input specs cover inputs" test_input_specs_cover_inputs;
    tc "emit with expanded fissions" test_emit_expanded;
    tc "dot export" test_dot_export;
    tc "text export deterministic" test_text_export_deterministic;
    tc "summary" test_summary;
  ]
