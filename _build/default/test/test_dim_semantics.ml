(** Cross-cutting invariants of the operator dimension semantics, checked
    over every node of every Quick workload (thousands of operator
    instances).  The D-Graph and fission correctness rest on these. *)

open Magis
open Helpers

let graphs () =
  List.map (fun (w : Zoo.workload) -> (w.name, w.build Zoo.Quick)) Zoo.all

let in_shapes g (n : Graph.node) =
  Array.map (fun i -> Graph.shape g i) n.inputs

(** Spatial links connect dimensions of equal extent; link targets are in
    range. *)
let test_links_extent_consistency () =
  List.iter
    (fun (name, g) ->
      Graph.iter
        (fun n ->
          let ins = in_shapes g n in
          let r = Op.reduce_arity n.op ins in
          List.iter
            (fun (slot, in_dim, link) ->
              let ctx =
                Printf.sprintf "%s node %d (%s) slot %d dim %d" name n.id
                  (Op.name n.op) slot in_dim
              in
              Alcotest.(check bool) (ctx ^ ": slot in range") true
                (slot >= 0 && slot < Array.length ins);
              Alcotest.(check bool) (ctx ^ ": dim in range") true
                (in_dim >= 0 && in_dim < Shape.rank ins.(slot));
              match link with
              | Op.To_out j ->
                  Alcotest.(check bool) (ctx ^ ": out dim in range") true
                    (j >= 0 && j < Shape.rank n.shape);
                  (* slice/concat axes legitimately change extent along
                     the linked dimension; everywhere else extents match *)
                  let exempt =
                    match n.op with
                    | Op.Slice { axis; _ } -> j = axis
                    | Op.Concat axis -> j = axis
                    | _ -> false
                  in
                  if not exempt then
                    Alcotest.(check int)
                      (ctx ^ ": spatial extents equal")
                      (Shape.dim ins.(slot) in_dim)
                      (Shape.dim n.shape j)
              | Op.To_reduce j ->
                  Alcotest.(check bool) (ctx ^ ": reduce axis in range") true
                    (j >= 0 && j < r))
            (Op.links n.op ins n.shape))
        g)
    (graphs ())

(** Reduce axes are fed consistently: every pair of input dims linked to
    the same reduce axis has the same extent. *)
let test_reduce_axis_extents_agree () =
  List.iter
    (fun (name, g) ->
      Graph.iter
        (fun n ->
          let ins = in_shapes g n in
          let by_axis = Hashtbl.create 4 in
          List.iter
            (fun (slot, in_dim, link) ->
              match link with
              | Op.To_reduce j ->
                  let e = Shape.dim ins.(slot) in_dim in
                  (match Hashtbl.find_opt by_axis j with
                  | Some e' ->
                      Alcotest.(check int)
                        (Printf.sprintf "%s node %d (%s) reduce axis %d" name
                           n.id (Op.name n.op) j)
                        e' e
                  | None -> Hashtbl.replace by_axis j e)
              | Op.To_out _ -> ())
            (Op.links n.op ins n.shape))
        g)
    (graphs ())

(** Unsplittable output dims are in range; splitting any *splittable*
    output dim by a divisor keeps shape inference consistent (the
    foundation of fission expansion). *)
let test_unsplittable_in_range () =
  List.iter
    (fun (name, g) ->
      Graph.iter
        (fun n ->
          let ins = in_shapes g n in
          List.iter
            (fun d ->
              Alcotest.(check bool)
                (Printf.sprintf "%s node %d (%s): unsplittable dim %d in range"
                   name n.id (Op.name n.op) d)
                true
                (d >= 0 && d < Shape.rank n.shape))
            (Op.unsplittable_out_dims n.op ins n.shape))
        g)
    (graphs ())

(** Shape inference agrees with the stored shapes (the graphs were built
    through inference, so this guards against drift in [infer]). *)
let test_infer_agrees_with_stored () =
  List.iter
    (fun (name, g) ->
      Graph.iter
        (fun n ->
          if not (Op.is_input n.op) then
            match Op.infer n.op (in_shapes g n) with
            | Ok s ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s node %d (%s)" name n.id (Op.name n.op))
                  true
                  (Shape.equal_dims s n.shape)
            | Error e ->
                Alcotest.failf "%s node %d (%s): inference broke: %s" name
                  n.id (Op.name n.op) e)
        g)
    (graphs ())

(** Cost-model sanity over every operator instance: finite, non-negative
    flops and traffic. *)
let test_costs_finite () =
  let c = cache () in
  List.iter
    (fun (name, g) ->
      Graph.iter
        (fun n ->
          let ins = in_shapes g n in
          let fl = Op.flops n.op ins n.shape in
          let by = Op.bytes_moved n.op ins n.shape in
          let t = Op_cost.node_cost c g n.id in
          Alcotest.(check bool)
            (Printf.sprintf "%s node %d (%s)" name n.id (Op.name n.op))
            true
            (Float.is_finite fl && fl >= 0.0 && Float.is_finite by
             && by >= 0.0 && Float.is_finite t && t >= 0.0))
        g)
    (graphs ())

let suite =
  [
    tc "spatial link extents" test_links_extent_consistency;
    tc "reduce axis extents agree" test_reduce_axis_extents_agree;
    tc "unsplittable dims in range" test_unsplittable_in_range;
    tc "inference agrees with stored shapes" test_infer_agrees_with_stored;
    tc "costs finite" test_costs_finite;
  ]
