open Magis
open Helpers

let test_latency_is_sum_of_costs () =
  let c = cache () in
  let g, _, _, _, _ = chain3 ~n:1024 () in
  let order = Graph.topo_order g in
  let r = Simulator.run c g order in
  Alcotest.(check (float 1e-9)) "no swaps: latency = compute busy"
    r.compute_busy r.latency;
  Alcotest.(check (float 1e-12)) "matches graph cost" (Op_cost.graph_cost c g)
    r.latency

let test_async_swap_overlaps () =
  (* one swap whose transfer fits under plenty of compute: latency grows
     less than the full transfer time *)
  let c = cache () in
  let b = Builder.create () in
  let x = Builder.input b [ 512; 512 ] ~dtype:Shape.F32 in
  let w = Builder.weight b [ 512; 512 ] ~dtype:Shape.F32 in
  (* a long compute chain *)
  let h = ref x in
  for _ = 1 to 16 do
    h := Builder.matmul b !h w
  done;
  let first = Builder.relu b x in
  let st = Builder.op b Op.Store [ first ] in
  let ld = Builder.op b Op.Load [ st ] in
  let out = Builder.add b !h ld in
  let g = Builder.finish b in
  let order = Graph.topo_order g in
  let r = Simulator.run c g order in
  let transfer = 2.0 *. Op_cost.swap_time c (Shape.size_bytes (Graph.shape g first)) in
  Alcotest.(check bool) "swap hidden under compute" true
    (r.latency < r.compute_busy +. transfer);
  Alcotest.(check bool) "copy stream busy" true (r.copy_busy > 0.0);
  ignore out

let test_saturated_copy_stream_stalls () =
  (* tiny compute, huge transfers: the copy stream becomes the critical
     path *)
  let c = cache () in
  let b = Builder.create () in
  let x = Builder.input b [ 4_000_000 ] ~dtype:Shape.F32 in
  let r1 = Builder.relu b x in
  let st = Builder.op b Op.Store [ r1 ] in
  let ld = Builder.op b Op.Load [ st ] in
  let out = Builder.relu b ld in
  let g = Builder.finish b in
  let r = Simulator.run c g (Graph.topo_order g) in
  Alcotest.(check bool) "latency dominated by copies" true
    (r.latency >= r.copy_busy && r.copy_busy > r.compute_busy);
  ignore out

let test_cost_override () =
  let c = cache () in
  let g, _, _, _, _ = chain3 () in
  let order = Graph.topo_order g in
  let r = Simulator.run ~cost_of:(fun _ -> 0.5) c g order in
  (* 3 relu nodes at 0.5 each; inputs execute for free *)
  Alcotest.(check (float 1e-9)) "overridden" 1.5 r.latency

let test_peak_matches_lifetime () =
  let c = cache () in
  let g = mlp_training () in
  let order = Graph.topo_order g in
  let r = Simulator.run c g order in
  let a = Lifetime.analyze g order in
  Alcotest.(check int) "peak consistent" (Lifetime.peak_memory a) r.peak_mem

let suite =
  [
    tc "latency = sum of costs" test_latency_is_sum_of_costs;
    tc "async swap overlaps compute" test_async_swap_overlaps;
    tc "saturated copy stream stalls" test_saturated_copy_stream_stalls;
    tc "cost override" test_cost_override;
    tc "peak matches lifetime analysis" test_peak_matches_lifetime;
  ]
