open Magis
open Helpers
module Int_set = Util.Int_set

(* the paper's §2.3 example: k long skip connections alive at once *)
let skip_ladder k size =
  let b = Builder.create () in
  let x = Builder.input b [ size ] ~dtype:Shape.F32 in
  let mids = List.init k (fun _ -> Builder.relu b x) in
  let out =
    List.fold_left (fun acc m -> Builder.add b acc m) (List.hd mids)
      (List.tl mids)
  in
  (Builder.finish b, x, mids, out)

let test_chain_peak () =
  let g, _, _, _, _ = chain3 ~n:16 () in
  let a = Lifetime.analyze g (Graph.topo_order g) in
  (* along a unary chain, at most producer+consumer are live: 2 tensors,
     except the final output which is pinned *)
  Alcotest.(check int) "peak = 2 tensors" (2 * 16 * 4) (Lifetime.peak_memory a)

let test_skip_ladder_peak () =
  let k = 8 and size = 10 in
  let g, _, _, _ = skip_ladder k size in
  let a = Lifetime.analyze g (Graph.topo_order g) in
  (* all k branch tensors plus the input are alive simultaneously *)
  Alcotest.(check bool) "at least k tensors alive" true
    (Lifetime.peak_memory a >= k * size * 4)

let test_weights_pinned () =
  let g = mlp_training ~batch:2 ~hidden:4 () in
  let order = Graph.topo_order g in
  let a = Lifetime.analyze g order in
  (* the weights are alive at every step: the timeline never goes below
     their size *)
  let wbytes = Graph.weight_bytes g in
  Array.iteri
    (fun i m ->
      if i > 0 then
        Alcotest.(check bool) "timeline >= weights" true (m >= wbytes))
    (Lifetime.timeline a)

let test_outputs_pinned () =
  let g, _, _, _, j = diamond () in
  let order = Graph.topo_order g in
  let a = Lifetime.analyze g order in
  let tl = Lifetime.timeline a in
  (* the join's output is alive at the last step *)
  Alcotest.(check bool) "output alive at end" true
    (tl.(Array.length tl - 1) >= Shape.size_bytes (Graph.shape g j))

let test_hotspots_contain_peak_tensors () =
  let g, x, mids, _ = skip_ladder 6 32 in
  let a = Lifetime.analyze g (Graph.topo_order g) in
  let h = Lifetime.hotspots a in
  (* the skip tensors are the hot-spots *)
  List.iter
    (fun m ->
      Alcotest.(check bool) (Printf.sprintf "branch %d hot" m) true
        (Int_set.mem m h))
    mids;
  ignore x

let test_store_output_not_device () =
  let b = Builder.create () in
  let x = Builder.input b [ 1024 ] ~dtype:Shape.F32 in
  let r = Builder.relu b x in
  let st = Builder.op b Op.Store [ r ] in
  let ld = Builder.op b Op.Load [ st ] in
  let out = Builder.relu b ld in
  let g = Builder.finish b in
  Alcotest.(check int) "store occupies no device memory" 0
    (Lifetime.default_size g st);
  Alcotest.(check bool) "load occupies device memory" true
    (Lifetime.default_size g ld > 0);
  ignore out

let test_schedule_order_changes_peak () =
  (* two independent heavy branches: scheduling them one after the other
     beats interleaving *)
  let b = Builder.create () in
  let x = Builder.input b [ 1000 ] ~dtype:Shape.F32 in
  let a1 = Builder.relu b x in
  let a2 = Builder.relu b a1 in
  let b1 = Builder.tanh_ b x in
  let b2 = Builder.tanh_ b b1 in
  let j = Builder.add b a2 b2 in
  let g = Builder.finish b in
  let seq = [ x; a1; a2; b1; b2; j ] in
  let inter = [ x; a1; b1; a2; b2; j ] in
  let p_seq = Lifetime.peak_memory (Lifetime.analyze g seq) in
  let p_inter = Lifetime.peak_memory (Lifetime.analyze g inter) in
  Alcotest.(check bool) "sequential <= interleaved" true (p_seq <= p_inter)

let test_size_override () =
  let g, _, _, _, _ = chain3 ~n:100 () in
  let order = Graph.topo_order g in
  let full = Lifetime.peak_memory (Lifetime.analyze g order) in
  let halved =
    Lifetime.peak_memory
      (Lifetime.analyze ~size_of:(fun v -> Lifetime.default_size g v / 2) g order)
  in
  Alcotest.(check int) "half sizes half peak" (full / 2) halved

let test_interval () =
  let g, x, r1, _, _ = chain3 () in
  let order = Graph.topo_order g in
  let a = Lifetime.analyze g order in
  let pos_x = Option.get (Lifetime.position a x) in
  let birth, free = Lifetime.interval a pos_x in
  Alcotest.(check bool) "input born at its step" true (birth <= pos_x);
  Alcotest.(check bool) "freed after r1 runs" true
    (free >= Option.get (Lifetime.position a r1))

let suite =
  [
    tc "chain peak" test_chain_peak;
    tc "skip ladder peak" test_skip_ladder_peak;
    tc "weights pinned" test_weights_pinned;
    tc "outputs pinned" test_outputs_pinned;
    tc "hotspots at peak" test_hotspots_contain_peak_tensors;
    tc "store output is host-side" test_store_output_not_device;
    tc "order changes peak" test_schedule_order_changes_peak;
    tc "size override" test_size_override;
    tc "lifetime intervals" test_interval;
  ]
