test/helpers.ml: Alcotest Autodiff Builder Graph Hardware List Magis Op_cost Shape Transformer Util
