test/test_shape.ml: Alcotest Helpers Magis Shape
