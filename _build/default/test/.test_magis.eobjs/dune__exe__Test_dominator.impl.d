test/test_dominator.ml: Alcotest Dominator Graph Hashtbl Helpers List Magis Op Printf Randnet Util
