test/test_spatial.ml: Alcotest Array Builder Graph Helpers List Magis Op Printf Reorder Shape Simulator Spatial Unet Util
