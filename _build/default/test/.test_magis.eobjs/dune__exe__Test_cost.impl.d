test/test_cost.ml: Alcotest Graph Hardware Helpers Magis Op Op_cost Printf
