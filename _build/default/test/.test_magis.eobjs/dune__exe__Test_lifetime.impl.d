test/test_lifetime.ml: Alcotest Array Builder Graph Helpers Lifetime List Magis Op Option Printf Shape Util
