test/test_simulator.ml: Alcotest Builder Graph Helpers Lifetime Magis Op Op_cost Shape Simulator
