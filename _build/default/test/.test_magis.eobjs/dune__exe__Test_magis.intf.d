test/test_magis.mli:
