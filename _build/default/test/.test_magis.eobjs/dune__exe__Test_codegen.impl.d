test/test_codegen.ml: Alcotest Builder Export Ftree Graph Helpers List Magis Mstate Op Option Printf Pytorch_codegen Shape String Transformer
