test/test_integration.ml: Alcotest Array Fission Ftree Graph Helpers List Magis Mstate Naive Op Pofo Search Shape Simulator Transformer Unet Util Zoo
