test/test_baselines.ml: Alcotest Chain Dtr Fusion_compiler Graph Helpers List Magis Microbatch Naive Pofo Shape Simulator Transformer Util Xla Zoo
