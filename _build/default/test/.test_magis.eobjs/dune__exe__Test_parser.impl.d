test/test_parser.ml: Alcotest Builder Export Graph Helpers List Magis Op Program_parser Shape String Wl_hash Zoo
