test/test_props.ml: Autodiff Builder Dgraph Dominator Fission Graph Incremental Lifetime List Magis Op QCheck2 QCheck_alcotest Random Reorder Shape Util Wl_hash
