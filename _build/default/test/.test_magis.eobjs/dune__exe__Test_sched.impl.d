test/test_sched.ml: Alcotest Builder Graph Helpers Lifetime List Magis Op Partition Printf Reorder Shape Util Zoo
