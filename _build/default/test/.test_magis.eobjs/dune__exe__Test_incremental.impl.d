test/test_incremental.ml: Alcotest Array Autodiff Builder Graph Hashtbl Helpers Incremental Lifetime List Magis Printf Reorder Rule Sched_rules Shape Simulator Util
