test/test_outcome.ml: Alcotest Fission Fmt Ftree Graph Helpers Lifetime Magis Mstate Outcome Printf Util
