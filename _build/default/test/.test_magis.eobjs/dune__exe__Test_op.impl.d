test/test_op.ml: Alcotest Array Helpers List Magis Op Shape
