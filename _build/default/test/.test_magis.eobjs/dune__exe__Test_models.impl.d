test/test_models.ml: Alcotest Chain Graph Hardware Helpers List Magis Op Randnet Resnet Shape Simulator Unet Util Wl_hash Zoo
