test/test_search.ml: Alcotest Ftree Graph Helpers List Magis Mstate Search Shape Simulator Transformer Util
