test/test_dgraph.ml: Alcotest Builder Dgraph Graph Helpers List Magis Op Shape Util
