test/test_graph.ml: Alcotest Array Graph Helpers List Magis Op Util
