test/test_rules.ml: Alcotest Autodiff Builder Graph Hashtbl Helpers Lifetime List Magis Op Reorder Rule Sched_rules Shape Simulator Taso_rules Util Wl_hash
