test/test_ftree.ml: Alcotest Fission Fmt Ftree Graph Helpers Lifetime List Magis Mstate Option Printf Shape Transformer Util
