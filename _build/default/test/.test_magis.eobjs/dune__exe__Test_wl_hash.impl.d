test/test_wl_hash.ml: Alcotest Builder Graph Helpers Magis Op Shape Wl_hash
