test/test_dim_semantics.ml: Alcotest Array Float Graph Hashtbl Helpers List Magis Op Op_cost Printf Shape Zoo
