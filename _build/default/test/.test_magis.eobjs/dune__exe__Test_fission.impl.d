test/test_fission.ml: Alcotest Array Builder Dgraph Fission Ftree Graph Helpers List Magis Op Option Printf Reorder Shape Simulator String Util
