test/test_autodiff.ml: Alcotest Autodiff Builder Chain Graph Helpers List Magis Op Printf Shape Util
