test/test_allocator.ml: Alcotest Allocator Graph Helpers Lifetime List Magis Printf Shape Zoo
