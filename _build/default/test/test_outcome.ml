(** Unit tests of the baseline plumbing: the bisection driver and the
    outcome type, against synthetic closed-form systems. *)

open Magis
open Helpers

(** A synthetic system: latency grows linearly as the budget shrinks below
    the natural peak; infeasible below a floor. *)
let synthetic ~natural ~floor ~slope budget : Outcome.t =
  if budget < floor then Outcome.infeasible "synthetic"
  else if budget >= natural then
    { system = "synthetic"; peak_mem = natural; latency = 1.0; feasible = true }
  else
    {
      system = "synthetic";
      peak_mem = budget;
      latency = 1.0 +. (slope *. float_of_int (natural - budget));
      feasible = true;
    }

let test_bisection_finds_limit () =
  let natural = 1_000_000 and floor = 100_000 in
  let slope = 1e-6 (* +100% at 0 bytes *) in
  let o =
    Outcome.min_memory_under_latency
      ~run:(synthetic ~natural ~floor ~slope)
      ~lo:floor ~hi:natural ~lat_limit:1.10
  in
  Alcotest.(check bool) "feasible" true o.feasible;
  (* +10% latency is reached at 100k below natural *)
  let expected = natural - 100_000 in
  Alcotest.(check bool)
    (Printf.sprintf "close to the analytic optimum (got %d, expected ~%d)"
       o.peak_mem expected)
    true
    (abs (o.peak_mem - expected) < natural / 16);
  Alcotest.(check bool) "respects the limit" true (o.latency <= 1.10 +. 1e-9)

let test_bisection_infeasible_top () =
  (* even the most relaxed budget violates the latency limit *)
  let run _ = { Outcome.system = "s"; peak_mem = 1; latency = 9.0; feasible = true } in
  let o =
    Outcome.min_memory_under_latency ~run ~lo:1 ~hi:100 ~lat_limit:1.0
  in
  Alcotest.(check bool) "reported infeasible" false o.feasible

let test_bisection_monotone_floor () =
  (* a hard floor: everything below fails outright *)
  let o =
    Outcome.min_memory_under_latency
      ~run:(synthetic ~natural:1000 ~floor:800 ~slope:0.0)
      ~lo:1 ~hi:1000 ~lat_limit:2.0
  in
  Alcotest.(check bool) "feasible" true o.feasible;
  Alcotest.(check bool) "stops at or above the floor" true (o.peak_mem >= 800)

let test_infeasible_constructor () =
  let o = Outcome.infeasible "x" in
  Alcotest.(check bool) "not feasible" false o.feasible;
  Alcotest.(check string) "pp says FAILURE" "x: FAILURE"
    (Fmt.str "%a" Outcome.pp o)

let test_nested_fission_accounting () =
  (* a parent region at n=2 with a child at n=2: the child's interior
     tensors shrink by 4x *)
  let c = cache () in
  let g = mlp_training ~batch:16 ~hidden:16 () in
  let s = Mstate.init c g in
  let t = s.ftree in
  (* find a parent-child pair of candidates *)
  let pair = ref None in
  for i = 0 to Ftree.n_entries t - 1 do
    if (Ftree.entry t i).parent >= 0 && !pair = None then
      pair := Some (i, (Ftree.entry t i).parent)
  done;
  match !pair with
  | None -> () (* flat tree on this graph: nothing to check *)
  | Some (child, parent) ->
      let t = Ftree.set_n t child 2 in
      let t = Ftree.set_n t parent 2 in
      let acc = Ftree.accounting c g t in
      let child_members = Fission.members (Ftree.fission_at t child) in
      let parent_outs =
        Graph.outs_of g (Fission.members (Ftree.fission_at t parent))
      in
      let child_outs = Graph.outs_of g child_members in
      Util.Int_set.iter
        (fun v ->
          if
            (not (Util.Int_set.mem v child_outs))
            && not (Util.Int_set.mem v parent_outs)
          then
            Alcotest.(check int)
              (Printf.sprintf "node %d shrinks 4x" v)
              (Lifetime.default_size g v / 4)
              (acc.size_of v))
        child_members

let suite =
  [
    tc "bisection finds the analytic limit" test_bisection_finds_limit;
    tc "bisection reports infeasibility" test_bisection_infeasible_top;
    tc "bisection respects floors" test_bisection_monotone_floor;
    tc "infeasible constructor" test_infeasible_constructor;
    tc "nested fission accounting" test_nested_fission_accounting;
  ]
