open Magis
open Helpers
module Int_map = Util.Int_map
module Int_set = Util.Int_set

let test_every_weight_gets_gradient () =
  let b = Builder.create () in
  let x = Builder.input b [ 8; 16 ] ~dtype:Shape.F32 in
  let w1 = Builder.weight b [ 16; 16 ] ~dtype:Shape.F32 in
  let bias = Builder.weight b [ 16 ] ~dtype:Shape.F32 in
  let h = Builder.relu b (Builder.linear b x w1 bias) in
  let loss = Builder.sum_loss b h in
  let g, grads = Autodiff.grad_table (Builder.finish b) ~loss in
  List.iter
    (fun w ->
      match Int_map.find_opt w grads with
      | None -> Alcotest.failf "weight %d has no gradient" w
      | Some dw ->
          Alcotest.(check bool)
            (Printf.sprintf "grad %d has weight's shape" w)
            true
            (Shape.equal_dims (Graph.shape g w) (Graph.shape g dw)))
    [ w1; bias ]

let test_gradients_have_matching_shapes () =
  let g = mlp_training () in
  (* shape inference succeeded on every backward node *)
  Alcotest.(check bool) "graph valid" true (Graph.n_nodes g > 0);
  ignore (Graph.topo_order g)

let test_fanin_accumulates () =
  (* x used by two branches: its gradient must be the sum *)
  let b = Builder.create () in
  let x = Builder.input b [ 8 ] ~dtype:Shape.F32 in
  let l = Builder.relu b x in
  let r = Builder.tanh_ b x in
  let s = Builder.add b l r in
  let loss = Builder.sum_loss b s in
  let g, grads = Autodiff.grad_table (Builder.finish b) ~loss in
  match Int_map.find_opt x grads with
  | None -> Alcotest.fail "x has no grad"
  | Some dx ->
      Alcotest.(check string) "accumulated by add" "add"
        (Op.name (Graph.op g dx))

let test_activations_consumed_by_backward () =
  (* the key memory property: forward activations feed backward ops *)
  let g = mlp_training () in
  let forward, backward = Chain.split g in
  let crossing =
    Int_set.filter
      (fun v ->
        List.exists (fun s -> Int_set.mem s backward) (Graph.suc g v)
        && not (Op.is_input (Graph.op g v)))
      forward
  in
  Alcotest.(check bool) "several activations crossing into backward" true
    (Int_set.cardinal crossing >= 2)

let test_conv_backward_structure () =
  let b = Builder.create () in
  let x = Builder.input b [ 2; 3; 8; 8 ] ~dtype:Shape.F32 in
  let w = Builder.weight b [ 4; 3; 3; 3 ] ~dtype:Shape.F32 in
  let y = Builder.conv2d ~padding:1 b x w in
  let loss = Builder.sum_loss b y in
  let g, grads = Autodiff.grad_table (Builder.finish b) ~loss in
  let dw = Int_map.find w grads in
  Alcotest.(check string) "weight grad op" "conv2d_bwd_weight(s1,p1)"
    (Op.name (Graph.op g dw));
  let dx = Int_map.find x grads in
  Alcotest.(check string) "data grad op" "conv2d_bwd_data(s1,p1)"
    (Op.name (Graph.op g dx));
  Alcotest.(check bool) "dx shaped like x" true
    (Shape.equal_dims (Graph.shape g dx) (Graph.shape g x))

let test_concat_backward_slices () =
  let b = Builder.create () in
  let x = Builder.input b [ 4; 8 ] ~dtype:Shape.F32 in
  let l = Builder.relu b x in
  let r = Builder.tanh_ b x in
  let cat = Builder.concat b ~axis:1 [ l; r ] in
  let loss = Builder.sum_loss b cat in
  let g, grads = Autodiff.grad_table (Builder.finish b) ~loss in
  let dl = Int_map.find l grads in
  (match Graph.op g dl with
  | Op.Slice { axis = 1; lo = 0; hi = 8 } -> ()
  | op -> Alcotest.failf "expected slice grad, got %s" (Op.name op));
  let dr = Int_map.find r grads in
  match Graph.op g dr with
  | Op.Slice { axis = 1; lo = 8; hi = 16 } -> ()
  | op -> Alcotest.failf "expected second slice grad, got %s" (Op.name op)

let test_embedding_backward () =
  let b = Builder.create () in
  let table = Builder.weight b [ 50; 8 ] ~dtype:Shape.F32 in
  let ids = Builder.input ~label:"ids" b [ 4; 6 ] ~dtype:Shape.I64 in
  let e = Builder.embedding b table ids in
  let loss = Builder.sum_loss b e in
  let g, grads = Autodiff.grad_table (Builder.finish b) ~loss in
  let dt = Int_map.find table grads in
  Alcotest.(check string) "scatter-add grad" "embedding_bwd"
    (Op.name (Graph.op g dt));
  Alcotest.(check bool) "table-shaped" true
    (Shape.equal_dims (Graph.shape g dt) (Graph.shape g table))

let test_seed_is_label_input () =
  let g = mlp_training () in
  let seeds =
    Graph.fold
      (fun n acc ->
        if n.op = Op.Input Op.Label && n.label = "grad_seed" then n.id :: acc
        else acc)
      g []
  in
  Alcotest.(check int) "exactly one seed" 1 (List.length seeds)

let test_training_graph_roughly_triples () =
  let b = Builder.create () in
  let x = Builder.input b [ 8; 16 ] ~dtype:Shape.F32 in
  let w = Builder.weight b [ 16; 16 ] ~dtype:Shape.F32 in
  let h = Builder.dense b x w in
  let loss = Builder.sum_loss b h in
  let fwd = Builder.graph b in
  let n_fwd = Graph.n_nodes fwd in
  let g = Autodiff.backward fwd ~loss in
  Alcotest.(check bool) "backward adds nodes" true
    (Graph.n_nodes g > n_fwd + 1)

let suite =
  [
    tc "every weight gets a gradient" test_every_weight_gets_gradient;
    tc "shapes validate" test_gradients_have_matching_shapes;
    tc "fan-in accumulates" test_fanin_accumulates;
    tc "activations feed backward" test_activations_consumed_by_backward;
    tc "conv backward structure" test_conv_backward_structure;
    tc "concat backward slices" test_concat_backward_slices;
    tc "embedding backward" test_embedding_backward;
    tc "seed is a label input" test_seed_is_label_input;
    tc "backward extends the graph" test_training_graph_roughly_triples;
  ]
