open Magis
open Helpers
module Int_set = Util.Int_set
module Int_map = Util.Int_map

(** A fission of the MLP training graph along the batch dimension,
    reproducing the paper's Fig. 5. *)
let mlp_batch_fission ?(n = 2) () =
  let g = mlp_training ~batch:8 ~hidden:16 () in
  let x =
    List.find
      (fun v -> (Graph.node g v).op = Op.Input Op.Placeholder
                && (Graph.node g v).label = "x")
      (Graph.inputs g)
  in
  let dg = Dgraph.build g in
  let comp =
    List.find
      (fun c -> Dgraph.Dnode_set.mem { Dgraph.node = x; dim = 1 } c)
      (Dgraph.components dg)
  in
  let members = Int_set.remove x (Dgraph.graph_nodes_of_component comp) in
  (* keep only non-input members (weights/seed participate as inputs) *)
  let members =
    Int_set.filter (fun v -> not (Op.is_input (Graph.op g v))) members
  in
  let dims = Option.get (Dgraph.restrict comp members) in
  (g, x, { Fission.members; dims; n })

let test_valid_fission () =
  let g, _, f = mlp_batch_fission () in
  match Fission.validate g f with
  | Ok () -> ()
  | Error e -> Alcotest.failf "expected valid: %s" e

let test_input_roles () =
  let g, x, f = mlp_batch_fission () in
  match Fission.input_roles g f with
  | Error e -> Alcotest.failf "roles: %s" e
  | Ok roles ->
      (* x is sliced along the batch dim; weights are shared *)
      (match Int_map.find_opt x roles with
      | Some (Fission.Sliced 1) -> ()
      | Some (Fission.Sliced d) -> Alcotest.failf "x sliced along %d" d
      | Some Fission.Shared -> Alcotest.fail "x should be sliced"
      | None -> Alcotest.fail "x not an input?");
      Int_map.iter
        (fun u role ->
          if Op.is_weight (Graph.op g u) then
            match role with
            | Fission.Shared -> ()
            | Fission.Sliced _ -> Alcotest.failf "weight %d sliced" u)
        roles

let test_invalid_fissions_rejected () =
  let g, x, f = mlp_batch_fission () in
  (* n that does not divide the batch *)
  Alcotest.(check bool) "n=3 invalid (batch=8)" false
    (Fission.is_valid g (Fission.with_n f 3));
  (* non-convex subset: drop a middle node *)
  let mid =
    Int_set.elements f.members
    |> List.find (fun v ->
           let nd = Graph.node g v in
           (not (Op.is_input nd.op))
           && List.exists (fun u -> Int_set.mem u f.members) (Graph.pre g v)
           && List.exists (fun u -> Int_set.mem u f.members) (Graph.suc g v))
  in
  let broken =
    { f with
      members = Int_set.remove mid f.members;
      dims = Int_map.remove mid f.dims }
  in
  Alcotest.(check bool) "hole in the middle rejected" false
    (Fission.is_valid g (Fission.with_n broken 2));
  ignore x

let test_softmax_axis_split_rejected () =
  let b = Builder.create () in
  let x = Builder.input b [ 8; 16 ] ~dtype:Shape.F32 in
  let sm = Builder.softmax b ~axis:1 x in
  let g = Builder.finish b in
  let f =
    { Fission.members = Int_set.singleton sm;
      dims = Int_map.singleton sm 2;  (* the normalized axis *)
      n = 2 }
  in
  Alcotest.(check bool) "softmax axis rejected" false (Fission.is_valid g f);
  let ok =
    { Fission.members = Int_set.singleton sm;
      dims = Int_map.singleton sm 1;  (* the batch axis *)
      n = 2 }
  in
  Alcotest.(check bool) "batch axis fine" true (Fission.is_valid g ok)

let expansion_ops g =
  Graph.fold (fun n acc -> Op.name n.op :: acc) g []

let test_expand_structure () =
  let g, _, f = mlp_batch_fission ~n:2 () in
  let e = Fission.expand g f in
  let g' = e.graph in
  (* outputs preserved: same number of graph outputs with same shapes *)
  let outs_before = List.length (Graph.outputs g) in
  let outs_after = List.length (Graph.outputs g') in
  Alcotest.(check int) "same number of outputs" outs_before outs_after;
  (* slices and merge nodes appear *)
  let ops = expansion_ops g' in
  Alcotest.(check bool) "has slices" true
    (List.exists (fun o -> String.length o >= 5 && String.sub o 0 5 = "slice") ops);
  (* weight gradients merged by addition (Fig. 5) or concat present *)
  Alcotest.(check bool) "has concat or add merge" true
    (List.exists (fun o -> o = "concat(0)" || o = "add") ops);
  (* both parts materialized *)
  Alcotest.(check int) "two parts" 2 (Array.length e.part_nodes);
  Alcotest.(check bool) "parts non-empty" true
    (Array.for_all (fun l -> l <> []) e.part_nodes)

let test_expand_preserves_output_shapes () =
  let g, _, f = mlp_batch_fission ~n:4 () in
  let e = Fission.expand g f in
  Int_map.iter
    (fun old_id new_id ->
      Alcotest.(check bool)
        (Printf.sprintf "replacement %d->%d shape" old_id new_id)
        true
        (Shape.equal_dims (Graph.shape g old_id) (Graph.shape e.graph new_id)))
    e.replacements

let test_expand_weight_grad_merged_by_add () =
  (* Fig. 5: the weight gradient is assigned the reduce axis, so its
     replacement must be an Add of partial gradients *)
  let g, _, f = mlp_batch_fission ~n:2 () in
  let reduce_assigned =
    Int_map.fold
      (fun v d acc -> if d < 0 then v :: acc else acc)
      f.dims []
  in
  Alcotest.(check bool) "some node carries the reduce axis" true
    (reduce_assigned <> []);
  let e = Fission.expand g f in
  List.iter
    (fun v ->
      if Int_set.mem v (Graph.outs_of g f.members) then
        match Int_map.find_opt v e.replacements with
        | Some repl ->
            Alcotest.(check string) "merged by add" "add"
              (Op.name (Graph.op e.graph repl))
        | None -> Alcotest.fail "reduce-assigned output not replaced")
    reduce_assigned

let test_virtual_accounting_direction () =
  (* the virtual accounting of a fission must (a) reduce peak memory and
     (b) increase latency — the trade the paper describes *)
  let c = cache () in
  let g, _, f = mlp_batch_fission ~n:2 () in
  let order = Graph.topo_order g in
  let base = Simulator.run c g order in
  let t = Ftree.of_fissions [ f ] in
  let acc = Ftree.accounting c g t in
  let virt = Simulator.run ~size_of:acc.size_of ~cost_of:acc.cost_of c g order in
  Alcotest.(check bool) "virtual peak below base" true
    (virt.peak_mem < base.peak_mem);
  Alcotest.(check bool) "virtual latency above base" true
    (virt.latency +. acc.extra_latency > base.latency)

let test_virtual_vs_real_expansion () =
  (* the virtual accounting should approximate the really expanded graph:
     same direction and within a reasonable factor *)
  let c = cache () in
  let g, _, f = mlp_batch_fission ~n:2 () in
  let t = Ftree.of_fissions [ f ] in
  let acc = Ftree.accounting c g t in
  let order = Graph.topo_order g in
  let virt = Simulator.run ~size_of:acc.size_of ~cost_of:acc.cost_of c g order in
  let virt_latency = virt.latency +. acc.extra_latency in
  let e = Fission.expand g f in
  let real_order = Reorder.schedule ~max_states:5_000 e.graph in
  let real = Simulator.run c e.graph real_order in
  let ratio a b = float_of_int a /. float_of_int b in
  Alcotest.(check bool)
    (Printf.sprintf "peak within 40%% (virt %d, real %d)" virt.peak_mem
       real.peak_mem)
    true
    (ratio virt.peak_mem real.peak_mem > 0.6
    && ratio virt.peak_mem real.peak_mem < 1.4);
  Alcotest.(check bool)
    (Printf.sprintf "latency within 40%% (virt %.3g, real %.3g)" virt_latency
       real.latency)
    true
    (virt_latency /. real.latency > 0.6 && virt_latency /. real.latency < 1.4)

let test_deeper_fission_saves_more () =
  let c = cache () in
  let g, _, f = mlp_batch_fission () in
  let order = Graph.topo_order g in
  let peak_at n =
    let t = Ftree.of_fissions [ Fission.with_n f n ] in
    let acc = Ftree.accounting c g t in
    (Simulator.run ~size_of:acc.size_of ~cost_of:acc.cost_of c g order).peak_mem
  in
  Alcotest.(check bool) "n=4 below n=2" true (peak_at 4 < peak_at 2);
  Alcotest.(check bool) "n=8 below n=4" true (peak_at 8 < peak_at 4)

let test_scaled_shapes () =
  let g, _, f = mlp_batch_fission ~n:2 () in
  (* pick a member with a positive assignment *)
  let v, d =
    Int_map.fold
      (fun v d acc -> if d > 0 && not (Op.is_input (Graph.op g v)) then (v, d) else acc)
      f.dims (-1, 0)
  in
  let _, out = Fission.scaled_shapes g f v in
  Alcotest.(check int) "assigned dim halved"
    (Shape.dim (Graph.shape g v) (d - 1) / 2)
    (Shape.dim out (d - 1))

let suite =
  [
    tc "valid fission (Fig. 5)" test_valid_fission;
    tc "input roles" test_input_roles;
    tc "invalid fissions rejected" test_invalid_fissions_rejected;
    tc "softmax axis split rejected" test_softmax_axis_split_rejected;
    tc "expand structure" test_expand_structure;
    tc "expand preserves output shapes" test_expand_preserves_output_shapes;
    tc "weight grads merged by add (Fig. 5)" test_expand_weight_grad_merged_by_add;
    tc "virtual accounting direction" test_virtual_accounting_direction;
    tc "virtual vs real expansion" test_virtual_vs_real_expansion;
    tc "deeper fission saves more" test_deeper_fission_saves_more;
    tc "scaled shapes" test_scaled_shapes;
  ]
