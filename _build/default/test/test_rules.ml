open Magis
open Helpers
module Int_set = Util.Int_set

let ctx_for c g schedule =
  let res = Simulator.run c g schedule in
  let pos = Hashtbl.create 64 in
  List.iteri (fun i v -> Hashtbl.replace pos v i) schedule;
  { Rule.default_ctx with
    hotspots = Lifetime.hotspots res.analysis;
    schedule_pos = (fun v -> Hashtbl.find_opt pos v);
    max_per_rule = 16 }

(* large-activation training graph where scheduling rules have targets *)
let subject () =
  let b = Builder.create () in
  let x = Builder.input b [ 128; 64 ] ~dtype:Shape.F32 in
  let h = ref x in
  for _ = 1 to 5 do
    let w = Builder.weight b [ 64; 64 ] ~dtype:Shape.F32 in
    h := Builder.gelu b (Builder.dense b !h w)
  done;
  let loss = Builder.sum_loss b !h in
  Autodiff.backward (Builder.finish b) ~loss

(** Every rewrite must preserve graph invariants: acyclic, valid shapes,
    same graph outputs count (semantics-preserving rewrites never lose a
    result). *)
let check_rewrite_soundness g (rw : Rule.rewrite) =
  let order = Graph.topo_order rw.graph in
  Alcotest.(check int)
    (rw.rule ^ ": order covers graph")
    (Graph.n_nodes rw.graph) (List.length order);
  let outs g = List.length (Graph.outputs g) in
  Alcotest.(check bool)
    (rw.rule ^ ": outputs preserved")
    true
    (outs rw.graph >= outs g)

let test_all_rules_sound () =
  let c = cache () in
  let g = subject () in
  let schedule = Reorder.schedule ~max_states:0 g in
  let ctx = ctx_for c g schedule in
  List.iter
    (fun (r : Rule.t) ->
      List.iter (check_rewrite_soundness g) (r.apply ctx g))
    (Sched_rules.all @ Taso_rules.all)

let test_swap_then_deswap_roundtrip () =
  let c = cache () in
  let g = subject () in
  let schedule = Reorder.schedule ~max_states:0 g in
  let ctx = ctx_for c g schedule in
  match Sched_rules.swapping.apply ctx g with
  | [] -> Alcotest.fail "no swap rewrite"
  | rw :: _ -> (
      let swap_count g =
        Graph.fold
          (fun n acc -> if Op.is_swap n.op then acc + 1 else acc)
          g 0
      in
      Alcotest.(check int) "store+load added" 2 (swap_count rw.graph);
      match Sched_rules.de_swapping.apply ctx rw.graph with
      | [] -> Alcotest.fail "no de-swap rewrite"
      | rw2 :: _ ->
          Alcotest.(check int) "swap removed" 0 (swap_count rw2.graph);
          Alcotest.(check bool) "structure restored" true
            (Wl_hash.equal_structure g rw2.graph))

let test_remat_then_deremat_roundtrip () =
  let c = cache () in
  let g = subject () in
  let schedule = Reorder.schedule ~max_states:0 g in
  let ctx = ctx_for c g schedule in
  match Sched_rules.rematerialization.apply ctx g with
  | [] -> Alcotest.fail "no remat rewrite"
  | rw :: _ -> (
      Alcotest.(check int) "one node added" (Graph.n_nodes g + 1)
        (Graph.n_nodes rw.graph);
      match Sched_rules.de_rematerialization.apply ctx rw.graph with
      | [] -> Alcotest.fail "no de-remat rewrite"
      | rewrites ->
          (* among the mergeable duplicate pairs, one merge undoes ours *)
          Alcotest.(check bool) "some de-remat restores the structure" true
            (List.exists
               (fun (rw2 : Rule.rewrite) ->
                 Wl_hash.equal_structure g rw2.graph)
               rewrites))

let test_swap_reduces_peak_with_reschedule () =
  let c = cache () in
  let g = subject () in
  let schedule = Reorder.schedule ~max_states:0 g in
  let base = Simulator.run c g schedule in
  let ctx = ctx_for c g schedule in
  let best =
    List.fold_left
      (fun acc (rw : Rule.rewrite) ->
        let order = Reorder.schedule ~max_states:0 rw.graph in
        let r = Simulator.run c rw.graph order in
        min acc r.peak_mem)
      max_int
      (Sched_rules.swapping.apply ctx g)
  in
  Alcotest.(check bool) "some swap reduces peak" true (best < base.peak_mem)

let test_qkv_merge () =
  (* three parallel Dense ops sharing an input merge into one (Fig. 1a) *)
  let b = Builder.create () in
  let x = Builder.input b [ 8; 16 ] ~dtype:Shape.F32 in
  let mk () = Builder.weight b [ 16; 16 ] ~dtype:Shape.F32 in
  let q = Builder.dense b x (mk ()) in
  let k = Builder.dense b x (mk ()) in
  let v = Builder.dense b x (mk ()) in
  let _ = Builder.add b (Builder.add b q k) v in
  let g = Builder.finish b in
  let ctx = { Rule.default_ctx with max_per_rule = 4 } in
  match Taso_rules.merge_parallel.apply ctx g with
  | [] -> Alcotest.fail "no merge rewrite"
  | rw :: _ ->
      (* merged graph has one dense and three slices *)
      let count name g =
        Graph.fold
          (fun n acc -> if Op.name n.op = name then acc + 1 else acc)
          g 0
      in
      Alcotest.(check int) "one dense left" 1 (count "dense" rw.graph);
      Alcotest.(check int) "one weight concat" 1 (count "concat(1)" rw.graph);
      Alcotest.(check bool) "slices introduced" true
        (Graph.fold
           (fun n acc ->
             acc || (match n.op with Op.Slice _ -> true | _ -> false))
           rw.graph false)

let test_concat_slice_elimination () =
  let b = Builder.create () in
  let x = Builder.input b [ 8; 16 ] ~dtype:Shape.F32 in
  let s1 = Builder.slice b ~axis:1 ~lo:0 ~hi:8 x in
  let s2 = Builder.slice b ~axis:1 ~lo:8 ~hi:16 x in
  let cat = Builder.concat b ~axis:1 [ s1; s2 ] in
  let _ = Builder.relu b cat in
  let g = Builder.finish b in
  let ctx = Rule.default_ctx in
  match Taso_rules.concat_of_slices.apply ctx g with
  | [] -> Alcotest.fail "no elimination"
  | rw :: _ ->
      Alcotest.(check int) "collapsed to input+relu" 2 (Graph.n_nodes rw.graph)

let test_transpose_pair_elimination () =
  let b = Builder.create () in
  let x = Builder.input b [ 4; 8; 2 ] ~dtype:Shape.F32 in
  let t1 = Builder.transpose b ~perm:[| 1; 0; 2 |] x in
  let t2 = Builder.transpose b ~perm:[| 1; 0; 2 |] t1 in
  let _ = Builder.relu b t2 in
  let g = Builder.finish b in
  match Taso_rules.transpose_pairs.apply Rule.default_ctx g with
  | [] -> Alcotest.fail "no elimination"
  | rw :: _ ->
      Alcotest.(check int) "transposes gone" 2 (Graph.n_nodes rw.graph)

let test_add_reassociation_preserves () =
  let b = Builder.create () in
  let x = Builder.input b [ 32 ] ~dtype:Shape.F32 in
  let a1 = Builder.relu b x in
  let a2 = Builder.tanh_ b x in
  let a3 = Builder.sigmoid b x in
  let s = Builder.add b (Builder.add b a1 a2) a3 in
  let _ = Builder.relu b s in
  let g = Builder.finish b in
  match Taso_rules.add_reassociate.apply Rule.default_ctx g with
  | [] -> Alcotest.fail "no reassociation"
  | rw :: _ ->
      Alcotest.(check int) "same node count" (Graph.n_nodes g)
        (Graph.n_nodes rw.graph);
      Alcotest.(check bool) "different structure" false
        (Wl_hash.equal_structure g rw.graph)

let test_sweep_remat_chains_copies () =
  let c = cache () in
  let g = subject () in
  let schedule = Reorder.schedule ~max_states:0 g in
  let ctx = ctx_for c g schedule in
  match Sched_rules.sweep_rematerialization.apply ctx g with
  | [] -> () (* no cheap hot tensors: acceptable on this subject *)
  | rw :: _ ->
      (* the rewrite is one compound step touching several nodes *)
      Alcotest.(check bool) "touches several nodes" true
        (Int_set.cardinal rw.touched_old >= 2);
      ignore (Graph.topo_order rw.graph)

let test_hotspot_restriction () =
  let c = cache () in
  let g = subject () in
  let schedule = Reorder.schedule ~max_states:0 g in
  let ctx = ctx_for c g schedule in
  let restricted = Sched_rules.swapping.apply ctx g in
  let unrestricted =
    Sched_rules.swapping.apply { ctx with restrict_to_hotspots = false } g
  in
  Alcotest.(check bool) "heuristic prunes the rule space" true
    (List.length restricted <= List.length unrestricted)

let suite =
  [
    tc "all rules produce sound rewrites" test_all_rules_sound;
    tc "swap/de-swap roundtrip" test_swap_then_deswap_roundtrip;
    tc "remat/de-remat roundtrip" test_remat_then_deremat_roundtrip;
    tc "swap reduces peak" test_swap_reduces_peak_with_reschedule;
    tc "QKV merge (Fig. 1a)" test_qkv_merge;
    tc "concat-of-slices elimination" test_concat_slice_elimination;
    tc "transpose pair elimination" test_transpose_pair_elimination;
    tc "add re-association" test_add_reassociation_preserves;
    tc "sweep remat builds chains" test_sweep_remat_chains_copies;
    tc "hot-spot restriction (§5.2)" test_hotspot_restriction;
  ]
