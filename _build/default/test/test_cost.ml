open Magis
open Helpers

let test_cost_positive_and_cached () =
  let c = cache () in
  let g = mlp_training () in
  Graph.iter
    (fun n ->
      let t = Op_cost.node_cost c g n.id in
      if Op.is_input n.op || Op.is_swap n.op then
        Alcotest.(check (float 0.0)) "free" 0.0 t
      else
        Alcotest.(check bool) (Printf.sprintf "%s > 0" (Op.name n.op)) true
          (t > 0.0))
    g;
  Op_cost.reset_stats c;
  ignore (Op_cost.graph_cost c g);
  let hits, misses = Op_cost.stats c in
  Alcotest.(check int) "all hits after warmup" 0 misses;
  Alcotest.(check bool) "hits counted" true (hits > 0)

let test_bigger_op_costs_more () =
  let c = cache () in
  let mm = Op.Matmul { trans_a = false; trans_b = false } in
  let small = Op_cost.cost c mm [| shape [ 32; 32 ]; shape [ 32; 32 ] |]
      (shape [ 32; 32 ]) in
  let big = Op_cost.cost c mm [| shape [ 256; 256 ]; shape [ 256; 256 ] |]
      (shape [ 256; 256 ]) in
  Alcotest.(check bool) "bigger matmul slower" true (big > small)

let test_utilization_penalty () =
  (* n sequential halves cost more than the whole: the fission tax *)
  let c = cache () in
  let mm = Op.Matmul { trans_a = false; trans_b = false } in
  let whole = Op_cost.cost c mm [| shape [ 128; 64 ]; shape [ 64; 64 ] |]
      (shape [ 128; 64 ]) in
  let half = Op_cost.cost c mm [| shape [ 64; 64 ]; shape [ 64; 64 ] |]
      (shape [ 64; 64 ]) in
  Alcotest.(check bool) "2 x half > whole" true (2.0 *. half > whole)

let test_swap_time () =
  let c = cache () in
  let t = Op_cost.swap_time c 16_000_000_000 in
  (* 16 GB over a 16 GB/s link = 1 second *)
  Alcotest.(check (float 0.01)) "pcie model" 1.0 t

let test_hardware_profiles () =
  Alcotest.(check bool) "desktop faster than mobile" true
    (Hardware.rtx3090.peak_flops > Hardware.mobile.peak_flops);
  Alcotest.(check bool) "default is desktop" true
    (Hardware.default.name = Hardware.rtx3090.name)

let suite =
  [
    tc "cost positive and cached" test_cost_positive_and_cached;
    tc "bigger op costs more" test_bigger_op_costs_more;
    tc "utilization penalty" test_utilization_penalty;
    tc "swap time" test_swap_time;
    tc "hardware profiles" test_hardware_profiles;
  ]
