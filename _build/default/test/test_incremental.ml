open Magis
open Helpers
module Int_set = Util.Int_set

(* a deeper MLP so hot tensors have distant consumers for the swap rule *)
let deep_mlp () =
  let b = Builder.create () in
  let x = Builder.input b [ 256; 32 ] ~dtype:Shape.F32 in
  let h = ref x in
  for _ = 1 to 6 do
    let w = Builder.weight b [ 32; 32 ] ~dtype:Shape.F32 in
    h := Builder.relu b (Builder.dense b !h w)
  done;
  let loss = Builder.sum_loss b !h in
  Autodiff.backward (Builder.finish b) ~loss

let rewrite_one g ~hotspots ~schedule =
  let pos = Hashtbl.create 64 in
  List.iteri (fun i v -> Hashtbl.replace pos v i) schedule;
  let ctx =
    { Rule.default_ctx with hotspots;
      schedule_pos = (fun v -> Hashtbl.find_opt pos v) }
  in
  match Sched_rules.swapping.apply ctx g with
  | rw :: _ -> Some rw
  | [] -> None

let test_incremental_valid () =
  let c = cache () in
  let g = deep_mlp () in
  let schedule = Reorder.schedule ~max_states:0 g in
  let res = Simulator.run c g schedule in
  match rewrite_one g ~hotspots:(Lifetime.hotspots res.analysis) ~schedule with
  | None -> Alcotest.fail "no rewrite available"
  | Some rw ->
      let size_of v = Lifetime.default_size rw.graph v in
      let order, stats =
        Incremental.reschedule ~old_graph:g ~new_graph:rw.graph
          ~old_schedule:schedule ~mutated_old:rw.touched_old ~size_of ()
      in
      valid_order_of rw.graph order;
      Alcotest.(check bool) "rescheduled fewer nodes than full" true
        (stats.rescheduled <= Graph.n_nodes rw.graph)

let test_incremental_matches_full_quality () =
  let c = cache () in
  let g = deep_mlp () in
  let schedule = Reorder.schedule ~max_states:2_000 g in
  let res = Simulator.run c g schedule in
  match rewrite_one g ~hotspots:(Lifetime.hotspots res.analysis) ~schedule with
  | None -> Alcotest.fail "no rewrite available"
  | Some rw ->
      let size_of v = Lifetime.default_size rw.graph v in
      let inc, _ =
        Incremental.reschedule ~max_states:2_000 ~old_graph:g
          ~new_graph:rw.graph ~old_schedule:schedule
          ~mutated_old:rw.touched_old ~size_of ()
      in
      let full = Reorder.schedule ~max_states:2_000 rw.graph in
      let p order =
        Lifetime.peak_memory (Lifetime.analyze rw.graph order)
      in
      (* incremental should be close to the full reschedule *)
      Alcotest.(check bool)
        (Printf.sprintf "within 20%% of full (inc %d, full %d)" (p inc) (p full))
        true
        (float_of_int (p inc) <= 1.2 *. float_of_int (p full))

let test_extend_bound_clamps () =
  let g, _, _, _, _ = chain3 () in
  let psi = Array.of_list (Graph.topo_order g) in
  let lo = Incremental.extend_bound g psi 0 (-1) in
  let hi = Incremental.extend_bound g psi (Array.length psi - 1) 1 in
  Alcotest.(check bool) "bounds in range" true
    (lo >= 0 && hi < Array.length psi)

let test_interval_covers_mutation () =
  let g = mlp_training () in
  let psi = Array.of_list (Graph.topo_order g) in
  let mid = Array.length psi / 2 in
  let beg, end_ = Incremental.get_reschedule_interval g psi [ mid ] in
  Alcotest.(check bool) "interval contains the mutated position" true
    (beg <= mid && mid < end_)

let test_full_fallback_on_empty_positions () =
  (* when the mutated nodes are not in the old schedule (degenerate), the
     algorithm falls back to full scheduling and still returns a valid
     order *)
  let g = mlp_training () in
  let schedule = Graph.topo_order g in
  let size_of v = Lifetime.default_size g v in
  let order, _ =
    Incremental.reschedule ~old_graph:g ~new_graph:g ~old_schedule:schedule
      ~mutated_old:(Int_set.singleton (-42)) ~size_of ()
  in
  valid_order_of g order

let test_sequential_rewrites_stay_valid () =
  (* a search-like trajectory: five swap insertions, each rescheduled
     incrementally on top of the previous schedule *)
  let c = cache () in
  let g = ref (deep_mlp ()) in
  let schedule = ref (Reorder.schedule ~max_states:0 !g) in
  for step = 1 to 5 do
    let res = Simulator.run c !g !schedule in
    match
      rewrite_one !g ~hotspots:(Lifetime.hotspots res.analysis)
        ~schedule:!schedule
    with
    | None -> () (* ran out of targets: fine *)
    | Some rw ->
        let size_of v = Lifetime.default_size rw.graph v in
        let order, _ =
          Incremental.reschedule ~old_graph:!g ~new_graph:rw.graph
            ~old_schedule:!schedule ~mutated_old:rw.touched_old ~size_of ()
        in
        Alcotest.(check bool)
          (Printf.sprintf "valid after rewrite %d" step)
          true
          (Graph.is_valid_order rw.graph order);
        g := rw.graph;
        schedule := order
  done

let suite =
  [
    tc "incremental produces valid schedule" test_incremental_valid;
    tc "incremental close to full quality" test_incremental_matches_full_quality;
    tc "extend_bound clamps" test_extend_bound_clamps;
    tc "interval covers mutation" test_interval_covers_mutation;
    tc "fallback on unknown positions" test_full_fallback_on_empty_positions;
    tc "sequential rewrites stay valid" test_sequential_rewrites_stay_valid;
  ]
