(** End-to-end integration tests: the full pipeline (model → analysis →
    optimization → expanded output) on small real workloads. *)

open Magis
open Helpers
module Int_set = Util.Int_set

let small_budget =
  { Search.default_config with time_budget = 2.0; max_iterations = 80 }

let test_end_to_end_unet () =
  let c = cache () in
  let g = Unet.build_unet ~batch:4 ~image:32 ~base:8 ~depth:3 () in
  let base = Simulator.run c g (Graph.program_order g) in
  let r = Search.optimize_memory ~config:small_budget c ~overhead:0.10 g in
  Alcotest.(check bool) "memory reduced" true (r.best.peak_mem < base.peak_mem);
  Alcotest.(check bool) "latency bounded" true
    (r.best.latency <= base.latency *. 1.101)

let test_optimized_state_expandable () =
  (* the final M-State's virtual fissions can be materialized into a real
     graph via expansion *)
  let c = cache () in
  let g =
    Transformer.build_lm
      { Transformer.batch = 8; seq_len = 16; hidden = 32; heads = 2;
        layers = 1; vocab = 64; dtype = Shape.F32 }
  in
  let r = Search.optimize_memory ~config:small_budget c ~overhead:0.15 g in
  let best = r.best in
  (* expand every enabled fission (outermost only) on the best graph *)
  let expanded =
    List.fold_left
      (fun acc_g i ->
        let f = Ftree.fission_at best.ftree i in
        if Ftree.has_enabled_ancestor best.ftree i then acc_g
        else if Fission.is_valid acc_g f then
          (Fission.expand acc_g f).graph
        else acc_g)
      best.graph
      (Ftree.enabled_indices best.ftree)
  in
  (* the expanded graph is a valid computation graph with the same
     interface size *)
  ignore (Graph.topo_order expanded);
  Alcotest.(check bool) "outputs preserved" true
    (List.length (Graph.outputs expanded) >= List.length (Graph.outputs g))

let test_magis_beats_naive_on_all_quick_workloads () =
  let c = cache () in
  List.iter
    (fun name ->
      let w = Zoo.find name in
      let g = w.build Zoo.Quick in
      let base = Naive.run c g in
      let r = Search.optimize_memory ~config:small_budget c ~overhead:0.10 g in
      Alcotest.(check bool) (name ^ ": memory reduced") true
        (r.best.peak_mem < base.peak_mem))
    [ "UNet"; "BERT-base" ]

let test_pareto_dominance_over_baselines () =
  (* at a fixed memory budget, MAGIS should not be dramatically slower
     than the best baseline (sanity for Fig. 11) *)
  let c = cache () in
  let g = Zoo.unet.build Zoo.Quick in
  let base = Naive.run c g in
  let budget = int_of_float (float_of_int base.peak_mem *. 0.6) in
  let config = { Search.default_config with time_budget = 8.0 } in
  let magis =
    Search.run ~config c (Search.Min_latency { mem_limit = budget }) g
  in
  Alcotest.(check bool) "MAGIS meets the budget" true
    (magis.best.peak_mem <= budget);
  let pofo = Pofo.run c g ~budget in
  (if pofo.feasible then
     Alcotest.(check bool) "MAGIS latency within 1.25x of POFO" true
       (magis.best.latency <= 1.25 *. pofo.latency))

let test_store_load_decomposition_invariant () =
  (* after optimization, every Load has a Store producer and every Store
     has a device-resident source — the §5.2 decomposition stays sound *)
  let c = cache () in
  let g = Zoo.bert.build Zoo.Quick in
  let r = Search.optimize_memory ~config:small_budget c ~overhead:0.10 g in
  Graph.iter
    (fun n ->
      match n.op with
      | Op.Load ->
          Alcotest.(check string) "load reads a store" "store"
            (Op.name (Graph.op r.best.graph n.inputs.(0)))
      | Op.Store ->
          Alcotest.(check bool) "store reads a tensor" true
            (not (Op.is_swap (Graph.op r.best.graph n.inputs.(0))))
      | _ -> ())
    r.best.graph

let test_simulated_schedule_consistency () =
  (* re-simulating the best state reproduces its recorded numbers *)
  let c = cache () in
  let g = Zoo.unet.build Zoo.Quick in
  let r = Search.optimize_memory ~config:small_budget c ~overhead:0.10 g in
  let best = r.best in
  let again = Mstate.evaluate c best.graph best.ftree best.schedule in
  Alcotest.(check int) "peak reproducible" best.peak_mem again.peak_mem;
  Alcotest.(check (float 1e-9)) "latency reproducible" best.latency
    again.latency

let suite =
  [
    tc "end-to-end UNet optimization" test_end_to_end_unet;
    tc "optimized state expandable" test_optimized_state_expandable;
    tc "improves all quick workloads" test_magis_beats_naive_on_all_quick_workloads;
    tc "near-Pareto vs POFO" test_pareto_dominance_over_baselines;
    tc "store/load decomposition invariant" test_store_load_decomposition_invariant;
    tc "simulation consistency" test_simulated_schedule_consistency;
  ]
