open Magis
open Helpers
module Int_set = Util.Int_set

let test_dnodes_of_matmul () =
  let b = Builder.create () in
  let x = Builder.input b [ 4; 8 ] ~dtype:Shape.F32 in
  let w = Builder.input b [ 8; 6 ] ~dtype:Shape.F32 in
  let y = Builder.matmul b x w in
  let g = Builder.finish b in
  let dn = Dgraph.dnodes_of g y in
  (* 2 output dims + 1 reduce axis *)
  Alcotest.(check int) "3 dnodes" 3 (List.length dn);
  Alcotest.(check bool) "has reduce dnode" true
    (List.exists (fun (d : Dgraph.dnode) -> d.dim = -1) dn)

let test_matmul_component_structure () =
  let b = Builder.create () in
  let x = Builder.input b [ 4; 8 ] ~dtype:Shape.F32 in
  let w = Builder.input b [ 8; 6 ] ~dtype:Shape.F32 in
  let y = Builder.matmul b x w in
  let g = Builder.finish b in
  let dg = Dgraph.build g in
  let comps = Dgraph.components dg in
  (* three graph-level dimensions: m (x.0-y.0), k (x.1-w.0-y.reduce),
     n (w.1-y.1) *)
  Alcotest.(check int) "3 components" 3 (List.length comps);
  let with_y_out0 =
    List.find
      (fun c -> Dgraph.Dnode_set.mem { Dgraph.node = y; dim = 1 } c)
      comps
  in
  Alcotest.(check bool) "m component contains x dim 1" true
    (Dgraph.Dnode_set.mem { Dgraph.node = x; dim = 1 } with_y_out0);
  let with_reduce =
    List.find
      (fun c -> Dgraph.Dnode_set.mem { Dgraph.node = y; dim = -1 } c)
      comps
  in
  Alcotest.(check bool) "k component joins both operands" true
    (Dgraph.Dnode_set.mem { Dgraph.node = x; dim = 2 } with_reduce
    && Dgraph.Dnode_set.mem { Dgraph.node = w; dim = 1 } with_reduce)

let test_attention_components () =
  (* the Fig. 4 structure: batch and head dimensions form components that
     span the attention block *)
  let g, x, y = attention () in
  let dg = Dgraph.build g in
  let comps = Dgraph.components dg in
  (* the batch dim of the input should reach the block output *)
  let batch_comp =
    List.find_opt
      (fun c -> Dgraph.Dnode_set.mem { Dgraph.node = x; dim = 1 } c)
      comps
  in
  (match batch_comp with
  | None -> Alcotest.fail "no batch component"
  | Some c ->
      Alcotest.(check bool) "batch reaches output" true
        (Dgraph.Dnode_set.mem { Dgraph.node = y; dim = 1 } c));
  Alcotest.(check bool) "several graph-level dimensions" true
    (List.length comps >= 3)

let test_restrict_unique_assignment () =
  let b = Builder.create () in
  let x = Builder.input b [ 4; 8 ] ~dtype:Shape.F32 in
  let r = Builder.relu b x in
  let t = Builder.tanh_ b r in
  let g = Builder.finish b in
  let dg = Dgraph.build g in
  let comps = Dgraph.components dg in
  let c0 =
    List.find
      (fun c -> Dgraph.Dnode_set.mem { Dgraph.node = x; dim = 1 } c)
      comps
  in
  match Dgraph.restrict c0 (int_set [ r; t ]) with
  | None -> Alcotest.fail "restrict failed"
  | Some dims ->
      Alcotest.(check (option int)) "r assigned dim 1" (Some 1)
        (Util.Int_map.find_opt r dims);
      Alcotest.(check (option int)) "t assigned dim 1" (Some 1)
        (Util.Int_map.find_opt t dims)

let test_restrict_conflict_on_softmax_axis () =
  (* softmax over [n, n]: both dims of the attention matrix belong to the
     sequence dimension; restrict must refuse (constraint (3)) *)
  let b = Builder.create () in
  let x = Builder.input b [ 8; 16 ] ~dtype:Shape.F32 in
  let wq = Builder.input b [ 16; 16 ] ~dtype:Shape.F32 in
  let wk = Builder.input b [ 16; 16 ] ~dtype:Shape.F32 in
  (* q and k derive from the same input, so both dims of q.k^T belong to
     the same (sequence) dimension component, as in Fig. 4 *)
  let q = Builder.matmul b x wq in
  let k = Builder.matmul b x wk in
  let att = Builder.matmul ~trans_b:true b q k in
  let sm = Builder.softmax b ~axis:1 att in
  let g = Builder.finish b in
  let dg = Dgraph.build g in
  let comps = Dgraph.components dg in
  (* find the component containing both dims of att *)
  let seq =
    List.find_opt
      (fun c ->
        Dgraph.Dnode_set.mem { Dgraph.node = att; dim = 1 } c
        && Dgraph.Dnode_set.mem { Dgraph.node = att; dim = 2 } c)
      comps
  in
  match seq with
  | None -> Alcotest.fail "expected a fused sequence component"
  | Some c ->
      Alcotest.(check bool) "restrict refuses double assignment" true
        (Dgraph.restrict c (int_set [ att; sm ]) = None)

let test_weights_not_in_batch_component () =
  (* Fig. 5: the batch dimension does not run through weight tensors *)
  let g = mlp_training () in
  let x =
    List.find
      (fun v ->
        (Graph.node g v).op = Op.Input Op.Placeholder
        && (Graph.node g v).label = "x")
      (Graph.inputs g)
  in
  let w =
    List.find (fun v -> Op.is_weight (Graph.node g v).op) (Graph.inputs g)
  in
  let dg = Dgraph.build g in
  let comps = Dgraph.components dg in
  let batch =
    List.find
      (fun c -> Dgraph.Dnode_set.mem { Dgraph.node = x; dim = 1 } c)
      comps
  in
  Alcotest.(check bool) "no weight dnode in batch component" true
    (Dgraph.Dnode_set.for_all (fun (d : Dgraph.dnode) -> d.node <> w) batch)

let suite =
  [
    tc "dnodes of matmul" test_dnodes_of_matmul;
    tc "matmul component structure" test_matmul_component_structure;
    tc "attention components (Fig. 4)" test_attention_components;
    tc "restrict unique assignment" test_restrict_unique_assignment;
    tc "restrict conflict on softmax axis" test_restrict_conflict_on_softmax_axis;
    tc "weights outside batch component (Fig. 5)" test_weights_not_in_batch_component;
  ]
