open Magis
open Helpers
module Int_set = Util.Int_set

(* a same-conv chain: conv3x3(pad1) -> relu -> conv3x3(pad1) -> relu *)
let conv_chain ?(image = 16) ?(ch = 4) () =
  let b = Builder.create () in
  let x = Builder.input b [ 1; 3; image; image ] ~dtype:Shape.F32 in
  let w1 = Builder.weight b [ ch; 3; 3; 3 ] ~dtype:Shape.F32 in
  let c1 = Builder.conv2d ~padding:1 b x w1 in
  let r1 = Builder.relu b c1 in
  let w2 = Builder.weight b [ ch; ch; 3; 3 ] ~dtype:Shape.F32 in
  let c2 = Builder.conv2d ~padding:1 b r1 w2 in
  let r2 = Builder.relu b c2 in
  (Builder.finish b, [ c1; r1; c2; r2 ], r2)

let test_validate () =
  let g, chain, _ = conv_chain () in
  let f = { Spatial.chain; axis = 2; n = 2 } in
  (match Spatial.validate g f with
  | Ok () -> ()
  | Error e -> Alcotest.failf "expected valid: %s" e);
  (* accumulated halo: two pad-1 convs *)
  Alcotest.(check (option int)) "halo = 2" (Some 2) (Spatial.chain_halo g chain);
  (* parts thinner than the halo are rejected *)
  Alcotest.(check bool) "n=8 parts too thin" false
    (Spatial.is_valid g { f with n = 8 });
  (* strided conv cannot join *)
  let b = Builder.create () in
  let x = Builder.input b [ 1; 3; 16; 16 ] ~dtype:Shape.F32 in
  let w = Builder.weight b [ 4; 3; 3; 3 ] ~dtype:Shape.F32 in
  let c = Builder.conv2d ~stride:2 ~padding:1 b x w in
  let g2 = Builder.finish b in
  Alcotest.(check bool) "strided conv rejected" false
    (Spatial.is_valid g2 { Spatial.chain = [ c ]; axis = 2; n = 2 })

let test_expand_shapes () =
  let g, chain, last = conv_chain () in
  let f = { Spatial.chain; axis = 2; n = 2 } in
  let e = Spatial.expand g f in
  Alcotest.(check bool) "replacement shaped like original" true
    (Shape.equal_dims (Graph.shape g last) (Graph.shape e.graph e.replacement));
  (* the expanded graph contains haloed slices and a concat *)
  let has p = Graph.fold (fun n acc -> acc || p n.Graph.op) e.graph false in
  Alcotest.(check bool) "has concat on H" true (has (fun o -> o = Op.Concat 2));
  Alcotest.(check bool) "has slices" true
    (has (function Op.Slice _ -> true | _ -> false));
  ignore (Graph.topo_order e.graph)

let test_expand_halo_extents () =
  (* interior parts read step + 2*halo rows *)
  let g, chain, _ = conv_chain ~image:16 () in
  let f = { Spatial.chain; axis = 2; n = 4 } in
  let e = Spatial.expand g f in
  let slab_heights =
    Graph.fold
      (fun n acc ->
        match n.op with
        | Op.Slice { axis = 2; lo; hi } when Op.is_input (Graph.op e.graph n.inputs.(0)) ->
            (hi - lo) :: acc
        | _ -> acc)
      e.graph []
    |> List.sort compare
  in
  (* step=4, halo=2: edge slabs 6 rows, interior slabs 8 rows *)
  Alcotest.(check (list int)) "slab heights" [ 6; 6; 8; 8 ] slab_heights

let test_virtual_accounting_direction () =
  let c = cache () in
  let g, chain, _ = conv_chain ~image:64 ~ch:16 () in
  let f = { Spatial.chain; axis = 2; n = 4 } in
  let size_of, cost_of, extra = Spatial.accounting c g f in
  let order = Graph.topo_order g in
  let base = Simulator.run c g order in
  let virt = Simulator.run ~size_of ~cost_of c g order in
  Alcotest.(check bool) "peak reduced" true (virt.peak_mem < base.peak_mem);
  Alcotest.(check bool) "latency increased" true
    (virt.latency +. extra > base.latency)

let test_candidates_on_unet_inference () =
  let g = Unet.unet_inference ~batch:1 ~image:64 ~base:8 ~depth:3 () in
  let cands = Spatial.candidates g in
  Alcotest.(check bool) "found spatial chains" true (List.length cands >= 2);
  List.iter
    (fun (f : Spatial.t) ->
      Alcotest.(check bool) "each candidate valid" true (Spatial.is_valid g f))
    cands

let test_spatial_beats_nothing_on_batch1 () =
  (* batch-1 inference: regular batch fission has no leverage; spatial
     fission reduces the peak *)
  let c = cache () in
  let g = Unet.unet_inference ~batch:1 ~image:64 ~base:8 ~depth:3 () in
  let order = Graph.topo_order g in
  let base = Simulator.run c g order in
  match Spatial.candidates g with
  | [] -> Alcotest.fail "no candidates"
  | f :: _ ->
      let e = Spatial.expand g { f with n = 2 } in
      let order' = Reorder.schedule ~max_states:0 e.graph in
      let r = Simulator.run c e.graph order' in
      Alcotest.(check bool)
        (Printf.sprintf "peak reduced (base %d, spatial %d)" base.peak_mem
           r.peak_mem)
        true
        (r.peak_mem <= base.peak_mem)

let suite =
  [
    tc "validation and halo arithmetic" test_validate;
    tc "expansion shapes" test_expand_shapes;
    tc "expansion halo extents" test_expand_halo_extents;
    tc "virtual accounting direction" test_virtual_accounting_direction;
    tc "candidates on UNet inference" test_candidates_on_unet_inference;
    tc "spatial fission helps batch-1 inference" test_spatial_beats_nothing_on_batch1;
  ]
