open Magis
open Helpers

let subject () = Zoo.bert.build Zoo.Quick

let test_naive_matches_simulator () =
  let c = cache () in
  let g = subject () in
  let o = Naive.run c g in
  let r = Simulator.run c g (Graph.program_order g) in
  Alcotest.(check int) "peak" r.peak_mem o.peak_mem;
  Alcotest.(check (float 1e-9)) "latency" r.latency o.latency;
  Alcotest.(check bool) "feasible" true o.feasible

let test_fusion_improves_latency_not_memory () =
  let c = cache () in
  let g = subject () in
  let base = Naive.run c g in
  let tvm = Fusion_compiler.run Fusion_compiler.Tvm c g in
  let ti = Fusion_compiler.run Fusion_compiler.Torch_inductor c g in
  Alcotest.(check bool) "TVM faster than eager" true (tvm.latency < base.latency);
  Alcotest.(check bool) "TI at least as aggressive as TVM" true
    (ti.latency <= tvm.latency);
  Alcotest.(check int) "TVM memory unchanged" base.peak_mem tvm.peak_mem;
  let constrained =
    Fusion_compiler.constrained Fusion_compiler.Tvm c g
      ~mem_limit:(base.peak_mem / 2)
  in
  Alcotest.(check bool) "cannot meet 50% budget" false constrained.feasible

let test_pofo_curve_monotone () =
  let c = cache () in
  let g = subject () in
  let base = Naive.run c g in
  let lat_at r =
    let o = Pofo.run c g ~budget:(int_of_float (float_of_int base.peak_mem *. r)) in
    if o.feasible then Some o.latency else None
  in
  match (lat_at 0.9, lat_at 0.6, lat_at 0.45) with
  | Some l9, Some l6, Some l45 ->
      Alcotest.(check bool) "tighter budget costs more" true
        (l9 <= l6 +. 1e-9 && l6 <= l45 +. 1e-9)
  | _ -> Alcotest.fail "POFO failed on moderate budgets"

let test_pofo_infeasible_below_floor () =
  let c = cache () in
  let g = subject () in
  let o = Pofo.run c g ~budget:(Graph.weight_bytes g / 2) in
  Alcotest.(check bool) "below weights is impossible" false o.feasible

let test_xla_worse_than_pofo_when_tight () =
  let c = cache () in
  let g = subject () in
  let base = Naive.run c g in
  let budget = int_of_float (float_of_int base.peak_mem *. 0.45) in
  let p = Pofo.run c g ~budget in
  let x = Xla.run c g ~budget in
  match (p.feasible, x.feasible) with
  | true, true ->
      Alcotest.(check bool) "greedy XLA pays at least POFO's latency" true
        (x.latency >= p.latency -. 1e-9)
  | true, false -> () (* XLA giving up outright is also 'worse' *)
  | false, _ -> Alcotest.fail "POFO should be feasible at 45%"

let test_dtr_executes_and_degrades () =
  let c = cache () in
  let g = subject () in
  let base = Naive.run c g in
  let relaxed = Dtr.run c g ~budget:base.peak_mem in
  Alcotest.(check bool) "full budget feasible" true relaxed.feasible;
  Alcotest.(check bool) "no recompute overhead at full budget" true
    (relaxed.latency <= base.latency *. 1.001);
  let tight =
    Dtr.run c g
      ~budget:(int_of_float (float_of_int base.peak_mem *. 0.6))
  in
  Alcotest.(check bool) "tight budget feasible" true tight.feasible;
  Alcotest.(check bool) "tight budget costs recomputes" true
    (tight.latency > base.latency)

let test_dtr_fails_below_pinned () =
  let c = cache () in
  let g = subject () in
  let o = Dtr.run c g ~budget:(Graph.weight_bytes g / 2) in
  Alcotest.(check bool) "impossible budget fails" false o.feasible

let test_min_memory_bisection () =
  let c = cache () in
  let g = subject () in
  let base = Naive.run c g in
  let o = Pofo.min_memory c g ~lat_limit:(base.latency *. 1.10) in
  Alcotest.(check bool) "feasible" true o.feasible;
  Alcotest.(check bool) "improves on baseline" true (o.peak_mem < base.peak_mem);
  Alcotest.(check bool) "respects the latency limit" true
    (o.latency <= base.latency *. 1.10 +. 1e-9)

let test_microbatch_scales_latency () =
  let c = cache () in
  let build batch =
    Transformer.build_lm
      { Transformer.batch; seq_len = 16; hidden = 32; heads = 2; layers = 1;
        vocab = 64; dtype = Shape.F32 }
  in
  let g = build 16 in
  let base = Naive.run c g in
  let o =
    Microbatch.run c ~build ~batch:16 ~factor:4 ~budget:base.peak_mem
  in
  Alcotest.(check bool) "feasible" true o.feasible;
  (* four sequential micro-batches: latency is roughly scaled, memory is
     roughly quartered for activations *)
  Alcotest.(check bool) "peak below full batch" true (o.peak_mem < base.peak_mem);
  Alcotest.(check bool) "latency near base (4 quarter-batches)" true
    (o.latency > 0.5 *. base.latency)

let test_chain_stage_invariants () =
  let c = cache () in
  let g = subject () in
  let chain = Chain.analyze c g in
  Alcotest.(check bool) "several stages" true (Chain.n_stages chain > 3);
  List.iter
    (fun (s : Chain.stage) ->
      Alcotest.(check bool) "stage cost non-negative" true (s.cost >= 0.0);
      Alcotest.(check bool) "saved bytes non-negative" true (s.saved_bytes >= 0))
    chain.stages;
  Alcotest.(check bool) "forward+backward = graph" true
    (Util.Int_set.cardinal chain.forward
     + Util.Int_set.cardinal chain.backward
    = Graph.n_nodes g)

let suite =
  [
    tc "naive matches simulator" test_naive_matches_simulator;
    tc "fusion: latency not memory" test_fusion_improves_latency_not_memory;
    tc "POFO curve monotone" test_pofo_curve_monotone;
    tc "POFO infeasible below floor" test_pofo_infeasible_below_floor;
    tc "XLA at or above POFO latency" test_xla_worse_than_pofo_when_tight;
    tc "DTR executes and degrades" test_dtr_executes_and_degrades;
    tc "DTR fails below pinned bytes" test_dtr_fails_below_pinned;
    tc "min-memory bisection" test_min_memory_bisection;
    tc "micro-batching" test_microbatch_scales_latency;
    tc "chain stage invariants" test_chain_stage_invariants;
  ]
