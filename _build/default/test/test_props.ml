(** Property-based tests (QCheck): random DNNs, random schedules, random
    fission parameters — checking the invariants the optimizer relies on. *)

open Magis
module Int_set = Util.Int_set

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

(** Random layered DAG of elementwise/add ops over one input: every graph
    the generator produces is a valid computation graph. *)
let gen_layered_graph =
  QCheck2.Gen.(
    let* n_layers = int_range 2 6 in
    let* width = int_range 1 4 in
    let* seed = int_range 0 10_000 in
    return (n_layers, width, seed))

let build_layered (n_layers, width, seed) =
  let rng = Random.State.make [| seed |] in
  let b = Builder.create () in
  let x = Builder.input b [ 64 ] ~dtype:Shape.F32 in
  let prev = ref [ x ] in
  for _ = 1 to n_layers do
    let layer =
      List.init width (fun _ ->
          let pick l = List.nth l (Random.State.int rng (List.length l)) in
          match Random.State.int rng 3 with
          | 0 -> Builder.relu b (pick !prev)
          | 1 -> Builder.tanh_ b (pick !prev)
          | _ ->
              let a = pick !prev and c = pick !prev in
              Builder.add b a c)
    in
    prev := layer
  done;
  let out =
    List.fold_left
      (fun acc v -> Builder.add b acc v)
      (List.hd !prev) (List.tl !prev)
  in
  ignore out;
  Builder.finish b

let graph_arb =
  QCheck2.Gen.map build_layered gen_layered_graph

let count = 60

let prop name gen f = QCheck2.Test.make ~name ~count gen f

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let topo_is_valid =
  prop "topo_order is always a valid order" graph_arb (fun g ->
      Graph.is_valid_order g (Graph.topo_order g))

let greedy_is_valid =
  prop "greedy schedule is always a valid order" graph_arb (fun g ->
      let size_of v = Lifetime.default_size g v in
      let members = Int_set.of_list (Graph.node_ids g) in
      Graph.is_valid_order g (Reorder.greedy_schedule ~size_of g members))

let schedule_members_partition_valid =
  prop "partitioned schedule is valid" graph_arb (fun g ->
      let order = Reorder.schedule ~max_states:300 g in
      Graph.is_valid_order g order)

let wl_hash_stable_under_rebuild =
  prop "WL hash is deterministic" gen_layered_graph (fun params ->
      Wl_hash.hash (build_layered params) = Wl_hash.hash (build_layered params))

let lifetime_peak_bounds =
  prop "peak bounded by total bytes and by largest tensor" graph_arb (fun g ->
      let order = Graph.topo_order g in
      let a = Lifetime.analyze g order in
      let peak = Lifetime.peak_memory a in
      let total =
        Graph.fold (fun n acc -> acc + Shape.size_bytes n.shape) g 0
      in
      let largest =
        Graph.fold (fun n acc -> max acc (Shape.size_bytes n.shape)) g 0
      in
      peak <= total && peak >= largest)

let dp_never_worse_than_greedy =
  prop "DP schedule never worse than greedy" graph_arb (fun g ->
      let size_of v = Lifetime.default_size g v in
      let members = Int_set.of_list (Graph.node_ids g) in
      match Reorder.dp_schedule ~max_states:20_000 ~size_of g members with
      | None -> true (* budget exhausted: nothing to compare *)
      | Some dp ->
          let greedy = Reorder.greedy_schedule ~size_of g members in
          let peak o = Lifetime.peak_memory (Lifetime.analyze g o) in
          Graph.is_valid_order g dp && peak dp <= peak greedy)

let dominator_subtree_convex =
  prop "dominator strict subtrees are convex sub-graphs" graph_arb (fun g ->
      let t = Dominator.compute g in
      Graph.fold
        (fun n acc ->
          acc
          &&
          let sub = Dominator.strict_subtree t n.id in
          Int_set.is_empty sub || Graph.is_convex g sub)
        g true)

let fission_expansion_preserves_outputs =
  (* batch fission of a dense training step: expansion keeps the output
     count and every replacement keeps its shape *)
  prop "fission expansion preserves interfaces"
    QCheck2.Gen.(int_range 1 50)
    (fun seed ->
      let batch = 4 * (1 + (seed mod 4)) in
      let g = (fun () ->
          let b = Builder.create () in
          let x = Builder.input b [ batch; 8 ] ~dtype:Shape.F32 in
          let w = Builder.weight b [ 8; 8 ] ~dtype:Shape.F32 in
          let h = Builder.relu b (Builder.dense b x w) in
          let loss = Builder.sum_loss b h in
          Autodiff.backward (Builder.finish b) ~loss) ()
      in
      let x =
        List.find
          (fun v -> (Graph.node g v).label = "x")
          (Graph.inputs g)
      in
      let dg = Dgraph.build g in
      match
        List.find_opt
          (fun c -> Dgraph.Dnode_set.mem { Dgraph.node = x; dim = 1 } c)
          (Dgraph.components dg)
      with
      | None -> false
      | Some comp -> (
          let members =
            Int_set.filter
              (fun v -> not (Op.is_input (Graph.op g v)))
              (Dgraph.graph_nodes_of_component comp)
          in
          match Dgraph.restrict comp members with
          | None -> false
          | Some dims ->
              let f = { Fission.members; dims; n = 2 } in
              (match Fission.validate g f with
              | Error _ -> false
              | Ok () ->
                  let e = Fission.expand g f in
                  List.length (Graph.outputs e.graph)
                  = List.length (Graph.outputs g)
                  && Util.Int_map.for_all
                       (fun old_id new_id ->
                         Shape.equal_dims (Graph.shape g old_id)
                           (Graph.shape e.graph new_id))
                       e.replacements)))

let incremental_schedule_valid =
  prop "incremental schedule valid after random swap insertion" graph_arb
    (fun g ->
      let schedule = Graph.topo_order g in
      (* swap the largest intermediate *)
      let candidates =
        List.filter
          (fun v ->
            (not (Op.is_input (Graph.op g v))) && Graph.out_degree g v > 0)
          (Graph.node_ids g)
      in
      match candidates with
      | [] -> true
      | v :: _ -> (
          match Graph.suc g v with
          | [] -> true
          | c :: _ ->
              let g', store = Graph.add g Op.Store [ v ] in
              let g', load = Graph.add g' Op.Load [ store ] in
              let g' = Graph.replace_input g' ~node_id:c ~old_src:v ~new_src:load in
              let size_of u = Lifetime.default_size g' u in
              let order, _ =
                Incremental.reschedule ~old_graph:g ~new_graph:g'
                  ~old_schedule:schedule
                  ~mutated_old:(Int_set.of_list [ v; c ])
                  ~size_of ()
              in
              Graph.is_valid_order g' order))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      topo_is_valid;
      greedy_is_valid;
      schedule_members_partition_valid;
      wl_hash_stable_under_rebuild;
      lifetime_peak_bounds;
      dp_never_worse_than_greedy;
      dominator_subtree_convex;
      fission_expansion_preserves_outputs;
      incremental_schedule_valid;
    ]
