(** Figure 13: heuristic ablation on the BERT workload under the four
    constraints of §7.2.1/§7.2.2.  Settings: naïve-fission (random
    candidate selection instead of Algorithm 1), naïve-sch-rule (no
    hot-spot filtering for scheduling rules), and max-level L = 2 / 4 / 8.
    For each run we report the time point where the constraint was first
    met (the paper's ⋄), the best final value (the paper's □) and the
    search-progress curve. *)

open Magis

type setting = { label : string; ablation : Search.ablation }

let settings =
  [
    { label = "naive-fission";
      ablation = { Search.default_ablation with use_ftree_heuristic = false } };
    { label = "naive-sch-rule";
      ablation = { Search.default_ablation with restrict_sched_rules = false } };
    { label = "max-level=2";
      ablation = { Search.default_ablation with max_level = 2 } };
    { label = "max-level=4"; ablation = Search.default_ablation };
    { label = "max-level=8";
      ablation = { Search.default_ablation with max_level = 8 } };
  ]

type constraint_ = Lat_overhead of float | Mem_ratio of float

let constraint_label = function
  | Lat_overhead o -> Printf.sprintf "latency overhead < %.0f%%" (100.0 *. o)
  | Mem_ratio r -> Printf.sprintf "memory ratio < %.0f%%" (100.0 *. r)

let run (env : Common.env) =
  let w = Zoo.find "BERT-base" in
  let g = Common.workload_graph env w in
  let base = Common.baseline env g in
  let constraints =
    [ Lat_overhead 0.10; Lat_overhead 0.05; Mem_ratio 0.8; Mem_ratio 0.4 ]
  in
  List.iter
    (fun c ->
      Common.hr (Printf.sprintf "Figure 13: ablation on BERT, %s" (constraint_label c));
      List.iter
        (fun s ->
          let config =
            { (Common.search_config env) with ablation = s.ablation }
          in
          let result =
            match c with
            | Lat_overhead o ->
                Search.optimize_memory ~config env.cache ~overhead:o g
            | Mem_ratio r ->
                Search.optimize_latency ~config env.cache ~mem_ratio:r g
          in
          (* find when the constraint was first met, and the best value *)
          let meets peak lat =
            match c with
            | Lat_overhead o ->
                lat <= base.Outcome.latency *. (1.0 +. o) *. 1.0001
                && peak < base.peak_mem
            | Mem_ratio r ->
                float_of_int peak
                <= (float_of_int base.peak_mem *. r) +. 1.0
          in
          let first_met =
            List.find_opt (fun (_, p, l) -> meets p l) result.history
          in
          let objective peak lat =
            match c with
            | Lat_overhead _ -> float_of_int peak /. float_of_int base.peak_mem
            | Mem_ratio _ -> (lat -. base.latency) /. base.latency
          in
          (* running best objective over constraint-feasible states only *)
          let curve =
            List.rev
              (snd
                 (List.fold_left
                    (fun (best_so_far, acc) (t, p, l) ->
                      if meets p l then
                        let o = objective p l in
                        let b =
                          match best_so_far with
                          | Some b -> Float.min b o
                          | None -> o
                        in
                        (Some b, Printf.sprintf "(%.1fs, %.3f)" t b :: acc)
                      else (best_so_far, acc))
                    (None, []) result.history))
          in
          Printf.printf "%-16s best=%.3f  met@%s  curve: %s\n" s.label
            (objective result.best.peak_mem result.best.latency)
            (match first_met with
            | Some (t, _, _) -> Printf.sprintf "%.1fs" t
            | None -> "never")
            (String.concat " " curve))
        settings)
    constraints
