(** Figure 9: peak-memory ratio relative to unoptimized PyTorch under
    latency-overhead constraints of 10% (a) and 5% (b), for MAGIS and the
    five baselines on all seven workloads (lower is better; OOM = cannot
    meet the constraint on the experiment platform). *)

open Magis

let run (env : Common.env) =
  List.iter
    (fun overhead ->
      Common.hr
        (Printf.sprintf "Figure 9 (%s): memory ratio @ latency overhead < %.0f%%"
           (if overhead = 0.10 then "a" else "b")
           (100.0 *. overhead));
      let workloads = Zoo.all in
      let col_names = List.map (fun (w : Zoo.workload) -> w.name) workloads in
      let rows = [ "MAGIS"; "POFO"; "DTR"; "XLA"; "TVM"; "TI" ] in
      let columns =
        List.map
          (fun w ->
            let g = Common.workload_graph env w in
            let base = Common.baseline env g in
            List.map
              (fun o -> Common.cell_ratio o ~base)
              (Common.systems_memory env g ~overhead))
          workloads
      in
      (* transpose: columns are per-workload lists of per-system cells *)
      let cells =
        List.mapi (fun i _ -> List.map (fun col -> List.nth col i) columns) rows
      in
      Common.print_matrix ~row_names:rows ~col_names cells)
    [ 0.10; 0.05 ]
