(** Figure 16: case study — execution time and memory usage along one
    UNet training iteration for unoptimized PyTorch, MAGIS-1 (peak capped
    at 80% of PyTorch's) and MAGIS-2 (capped at 60%).  Prints
    (elapsed ms, live GB) series sampled along the schedule. *)

open Magis

let timeline env g (s : Mstate.t option) ~label =
  let cache = env.Common.cache in
  let schedule, size_of, cost_of =
    match s with
    | None ->
        ( Graph.program_order g,
          (fun v -> Lifetime.default_size g v),
          fun v -> Op_cost.node_cost cache g v )
    | Some s ->
        let acc = Ftree.accounting cache s.graph s.ftree in
        (s.schedule, acc.size_of, acc.cost_of)
  in
  let graph = match s with None -> g | Some s -> s.graph in
  let res = Simulator.run ~size_of ~cost_of cache graph schedule in
  let mem = Lifetime.timeline res.analysis in
  let costs = List.map cost_of schedule in
  let n = Array.length mem in
  let sample = max 1 (n / 24) in
  Printf.printf "%-9s" label;
  let t = ref 0.0 in
  List.iteri
    (fun i c ->
      t := !t +. c;
      if i mod sample = 0 || i = n - 1 then
        Printf.printf " (%.0f, %.2f)" (!t *. 1e3)
          (float_of_int mem.(i) /. 1e9))
    costs;
  Printf.printf "\n  -> peak %.2f GB, latency %.1f ms\n"
    (float_of_int res.peak_mem /. 1e9)
    (res.latency *. 1e3)

let run (env : Common.env) =
  let w = Zoo.find "UNet" in
  let g = Common.workload_graph env w in
  Common.hr
    (Printf.sprintf
       "Figure 16: execution time & memory usage, UNet (batch=%d) — (ms, GB) series"
       w.batch);
  timeline env g None ~label:"PyTorch";
  let config = Common.search_config env in
  List.iter
    (fun (label, ratio) ->
      let r = Search.optimize_latency ~config env.cache ~mem_ratio:ratio g in
      timeline env g (Some r.best) ~label)
    [ ("MAGIS-1", 0.8); ("MAGIS-2", 0.6) ]
