(** Figure 12: MAGIS vs POFO with micro-batching pre-processing on ViT —
    the whole graph is split along the batch dimension with factors
    32/16/8 before POFO runs (latency multiplied by the factor).  Shows
    that graph transformation helps POFO under tight budgets but MAGIS's
    coordinated search still wins. *)

open Magis

let run (env : Common.env) =
  let w = Zoo.find "ViT-base" in
  let g = Common.workload_graph env w in
  let base = Common.baseline env g in
  Common.hr
    (Printf.sprintf "Figure 12: MAGIS vs POFO + micro-batching, %s (batch=%d)"
       w.name w.batch);
  let build batch =
    match env.scale with
    | Zoo.Full ->
        Transformer.build_vit ~image:224 ~patch:16
          (Transformer.vit_base ~batch ())
    | Zoo.Quick ->
        Transformer.build_vit ~image:128 ~patch:16
          (Transformer.vit_base ~batch ~image:128 ~patch:16 ~layers:2 ())
  in
  let ratios = [ 0.8; 0.6; 0.5; 0.4; 0.3; 0.2 ] in
  let budget_of r = int_of_float (float_of_int base.Outcome.peak_mem *. r) in
  let print_series name points =
    Printf.printf "%-16s" name;
    List.iter (fun (m, l) -> Printf.printf " (%.2f, %+.2f)" m l) points;
    print_newline ()
  in
  (* MAGIS *)
  print_series "MAGIS"
    (List.filter_map
       (fun r ->
         let o = Common.magis_latency env g ~mem_ratio:r in
         if o.Outcome.feasible then
           Some (Common.ratio_of o ~base, Common.overhead_of o ~base)
         else None)
       ratios);
  (* plain POFO *)
  print_series "POFO"
    (List.filter_map
       (fun r ->
         let o = Pofo.run env.cache g ~budget:(budget_of r) in
         if o.Outcome.feasible then
           Some (Common.ratio_of o ~base, Common.overhead_of o ~base)
         else None)
       ratios);
  (* POFO over micro-batched graphs *)
  List.iter
    (fun factor ->
      print_series
        (Printf.sprintf "POFO(factor=%d)" factor)
        (List.filter_map
           (fun r ->
             let o =
               Microbatch.run env.cache ~build ~batch:w.batch ~factor
                 ~budget:(budget_of r)
             in
             if o.Outcome.feasible then
               Some (Common.ratio_of o ~base, Common.overhead_of o ~base)
             else None)
           ratios))
    [ 32; 16; 8 ]
