(** Extension experiment: spatial (halo) fission on batch-1
    high-resolution inference (VDSR super-resolution on the phone-class
    device) — the workload the paper's introduction motivates but regular
    F-Trans cannot touch.  Compares the unoptimized network, the
    scheduling-only optimizer, and real spatial expansions at several
    split factors, and checks the numeric equivalence of one expansion. *)

open Magis
module Interp = Magis_exec.Interp

let run (env : Common.env) =
  Common.hr "Extension: spatial (halo) fission, VDSR 512x512 batch-1 on mobile";
  let cache = Op_cost.create Hardware.mobile in
  let image = match env.scale with Zoo.Full -> 512 | Zoo.Quick -> 256 in
  let graph = Unet.srnet_inference ~image ~channels:64 ~depth:12 () in
  let base = Simulator.run cache graph (Graph.program_order graph) in
  Printf.printf "%-16s peak %8.1f MB (100%%)  latency %7.1f ms\n" "unoptimized"
    (float_of_int base.peak_mem /. 1e6)
    (base.latency *. 1e3);
  (* the coordinated optimizer without spatial fission: nothing to gain *)
  let config = Common.search_config env in
  let r = Search.optimize_memory ~config cache ~overhead:0.10 graph in
  Printf.printf "%-16s peak %8.1f MB (%3.0f%%)  latency %+6.1f%%\n"
    "MAGIS (no spatial)"
    (float_of_int r.best.peak_mem /. 1e6)
    (100.0 *. float_of_int r.best.peak_mem /. float_of_int base.peak_mem)
    (100.0 *. (r.best.latency -. base.latency) /. base.latency);
  let cands = Spatial.candidates graph in
  List.iter
    (fun n ->
      match cands with
      | [] -> ()
      | f :: _ ->
          let f = { f with Spatial.n } in
          if Spatial.is_valid graph f then begin
            let e = Spatial.expand graph f in
            let order = Reorder.schedule ~max_states:0 e.graph in
            let res = Simulator.run cache e.graph order in
            Printf.printf "%-16s peak %8.1f MB (%3.0f%%)  latency %+6.1f%%\n"
              (Printf.sprintf "spatial x%d" n)
              (float_of_int res.peak_mem /. 1e6)
              (100.0 *. float_of_int res.peak_mem /. float_of_int base.peak_mem)
              (100.0 *. (res.latency -. base.latency) /. base.latency)
          end)
    [ 2; 4; 8 ];
  (* numeric spot check on a reduced copy (the interpreter is O(n^4) on
     convolutions) *)
  let small = Unet.srnet_inference ~image:16 ~channels:4 ~depth:3 () in
  match Spatial.candidates small with
  | f :: _ when Spatial.is_valid small { f with n = 2 } ->
      let e = Spatial.expand small { f with n = 2 } in
      let env_fn = Interp.default_env small in
      let a = Interp.run small ~env:env_fn in
      let b = Interp.run e.graph ~env:env_fn in
      let last = List.nth f.chain (List.length f.chain - 1) in
      Printf.printf
        "numeric check: split vs unsplit max diff = %.2e (tolerance 1e-4)\n"
        (Interp.max_diff (Hashtbl.find a last) (Hashtbl.find b e.replacement))
  | _ -> Printf.printf "numeric check skipped (no candidate)\n"
