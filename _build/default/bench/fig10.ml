(** Figure 10: execution-latency overhead relative to unoptimized PyTorch
    under peak-memory constraints of 80% (a) and 40% (b) (lower is better;
    FAILURE = the system cannot reach the memory budget). *)

open Magis

let run (env : Common.env) =
  List.iter
    (fun mem_ratio ->
      Common.hr
        (Printf.sprintf
           "Figure 10 (%s): latency overhead @ memory ratio < %.0f%%"
           (if mem_ratio = 0.8 then "a" else "b")
           (100.0 *. mem_ratio));
      let workloads = Zoo.all in
      let col_names = List.map (fun (w : Zoo.workload) -> w.name) workloads in
      let rows = [ "MAGIS"; "POFO"; "DTR"; "XLA"; "TVM"; "TI" ] in
      let columns =
        List.map
          (fun w ->
            let g = Common.workload_graph env w in
            let base = Common.baseline env g in
            List.map
              (fun o -> Common.cell_overhead o ~base)
              (Common.systems_latency env g ~mem_ratio))
          workloads
      in
      let cells =
        List.mapi (fun i _ -> List.map (fun col -> List.nth col i) columns) rows
      in
      Common.print_matrix ~row_names:rows ~col_names cells)
    [ 0.8; 0.4 ]
