(** Table 2: evaluation workloads and their configurations, plus the
    measured graph statistics at the selected scale. *)

open Magis

let run (env : Common.env) =
  Common.hr "Table 2: Workloads for Evaluation";
  Printf.printf "%-12s %6s  %-34s %8s %12s %12s\n" "Name" "Batch"
    "Other Configuration" "Nodes" "Weights(MB)" "Peak(MB)";
  List.iter
    (fun (w : Zoo.workload) ->
      let g = Common.workload_graph env w in
      let base = Common.baseline env g in
      Printf.printf "%-12s %6d  %-34s %8d %12.1f %12.1f\n" w.name w.batch
        w.config (Graph.n_nodes g)
        (float_of_int (Graph.weight_bytes g) /. 1e6)
        (float_of_int base.peak_mem /. 1e6))
    Zoo.all
