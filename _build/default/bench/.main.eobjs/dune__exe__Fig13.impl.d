bench/fig13.ml: Common Float List Magis Outcome Printf Search String Zoo
