bench/fig10.ml: Common List Magis Printf Zoo
