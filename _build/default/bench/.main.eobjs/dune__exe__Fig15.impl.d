bench/fig15.ml: Common Magis Op_cost Printf Search Zoo
