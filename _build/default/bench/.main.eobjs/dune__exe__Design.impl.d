bench/design.ml: Allocator Common Graph List Magis Outcome Printf Search Zoo
