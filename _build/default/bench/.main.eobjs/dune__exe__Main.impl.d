bench/main.ml: Arg Cmd Cmdliner Common Design Fig10 Fig11 Fig12 Fig13 Fig14 Fig15 Fig16 Fig9 Fmt List Micro Printf Spatial_bench String Table2 Term Unix
