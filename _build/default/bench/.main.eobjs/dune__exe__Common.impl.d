bench/common.ml: Dtr Fusion_compiler Hardware List Magis Naive Op_cost Outcome Pofo Printf Search String Xla Zoo
