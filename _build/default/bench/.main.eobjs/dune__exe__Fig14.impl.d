bench/fig14.ml: Common Float Hashtbl Incremental Lifetime List Magis Printf Randnet Reorder Rule Sched_rules Simulator Taso_rules Unix Util
