bench/fig12.ml: Common List Magis Microbatch Outcome Pofo Printf Transformer Zoo
