bench/table2.ml: Common Graph List Magis Printf Zoo
