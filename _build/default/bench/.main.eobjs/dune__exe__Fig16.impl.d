bench/fig16.ml: Array Common Ftree Graph Lifetime List Magis Mstate Op_cost Printf Search Simulator Zoo
