bench/main.mli:
