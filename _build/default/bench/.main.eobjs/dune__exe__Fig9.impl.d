bench/fig9.ml: Common List Magis Printf Zoo
