bench/spatial_bench.ml: Common Graph Hardware Hashtbl List Magis Magis_exec Op_cost Printf Reorder Search Simulator Spatial Unet Zoo
