bench/fig11.ml: Common Dtr Fusion_compiler List Magis Outcome Pofo Printf Xla Zoo
