(** Micro-benchmarks (Bechamel) of the framework's core primitives:
    graph hashing, topological ordering, lifetime analysis, DP scheduling,
    fission accounting and D-Graph construction.  These are the inner
    loops whose costs appear in the Fig. 15 breakdown. *)

open Magis
open Bechamel
open Toolkit

let tests (env : Common.env) =
  let g = Common.workload_graph env (Zoo.find "BERT-base") in
  let order = Graph.topo_order g in
  let members = Util.Int_set.of_list (Graph.node_ids g) in
  let size_of v = Lifetime.default_size g v in
  let analysis = Lifetime.analyze g order in
  let hotspots = Lifetime.hotspots analysis in
  let ftree = Ftree.construct g ~hotspots in
  [
    Test.make ~name:"wl_hash" (Staged.stage (fun () -> Wl_hash.hash g));
    Test.make ~name:"topo_order" (Staged.stage (fun () -> Graph.topo_order g));
    Test.make ~name:"lifetime" (Staged.stage (fun () -> Lifetime.analyze g order));
    Test.make ~name:"simulate"
      (Staged.stage (fun () -> Simulator.run env.cache g order));
    Test.make ~name:"dominator" (Staged.stage (fun () -> Dominator.compute g));
    Test.make ~name:"dgraph" (Staged.stage (fun () -> Dgraph.build g));
    Test.make ~name:"partition"
      (Staged.stage (fun () -> Partition.partition g members));
    Test.make ~name:"greedy_schedule"
      (Staged.stage (fun () -> Reorder.greedy_schedule ~size_of g members));
    Test.make ~name:"ftree_construct"
      (Staged.stage (fun () -> Ftree.construct g ~hotspots));
    Test.make ~name:"ftree_accounting"
      (Staged.stage (fun () -> Ftree.accounting env.cache g ftree));
  ]

let run (env : Common.env) =
  Common.hr "Micro-benchmarks (Bechamel, monotonic clock)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ t ] -> Printf.printf "%-20s %12.1f us/run\n" name (t /. 1e3)
          | _ -> Printf.printf "%-20s (no estimate)\n" name)
        analyzed)
    (tests env)
