(** Figure 14: incremental scheduling (IS) vs full scheduling (FS) on 10
    randomly generated NASNet-like DNNs, 10 graph transformations each
    (TASO-style rules), after an initial schedule.  (a) per-test speedup of
    IS over FS; (b) optimization quality (peak memory with IS / peak with
    FS — 1.0 means IS matched the optimum FS found). *)

open Magis
module Int_set = Util.Int_set

let transformations env g ~hotspots ~schedule =
  let pos = Hashtbl.create 64 in
  List.iteri (fun i v -> Hashtbl.replace pos v i) schedule;
  let ctx =
    {
      Rule.default_ctx with
      hotspots;
      schedule_pos = (fun v -> Hashtbl.find_opt pos v);
      max_per_rule = 4;
    }
  in
  List.concat_map
    (fun (r : Rule.t) -> r.apply ctx g)
    (Taso_rules.all @ Sched_rules.all)
  |> fun l -> ignore env; l

let run (env : Common.env) =
  Common.hr "Figure 14: incremental vs full scheduling (10 DNNs x 10 transformations)";
  let speedups = ref [] and qualities = ref [] in
  for seed = 1 to 10 do
    let cfg = { Randnet.default with seed } in
    let g0 = Randnet.build ~cfg () in
    let schedule = ref (Reorder.schedule ~max_states:2_000 g0) in
    let g = ref g0 in
    let applied = ref 0 in
    while !applied < 10 do
      let res = Simulator.run env.Common.cache !g !schedule in
      let hotspots = Lifetime.hotspots res.analysis in
      let rewrites = transformations env !g ~hotspots ~schedule:!schedule in
      match rewrites with
      | [] -> applied := 10 (* no more transformations available *)
      | rw :: _ ->
          incr applied;
          let size_of v = Lifetime.default_size rw.Rule.graph v in
          (* full scheduling *)
          let t0 = Unix.gettimeofday () in
          let fs = Reorder.schedule ~max_states:2_000 rw.graph in
          let t_fs = Unix.gettimeofday () -. t0 in
          (* incremental scheduling *)
          let t0 = Unix.gettimeofday () in
          let is_, _ =
            Incremental.reschedule ~max_states:2_000 ~old_graph:!g
              ~new_graph:rw.graph ~old_schedule:!schedule
              ~mutated_old:rw.touched_old ~size_of ()
          in
          let t_is = Unix.gettimeofday () -. t0 in
          let peak order =
            (Simulator.run env.Common.cache rw.graph order).peak_mem
          in
          speedups := (t_fs /. Float.max 1e-6 t_is) :: !speedups;
          qualities :=
            (float_of_int (peak is_) /. float_of_int (max 1 (peak fs)))
            :: !qualities;
          g := rw.graph;
          schedule := is_
    done
  done;
  let speedups = List.rev !speedups and qualities = List.rev !qualities in
  let n = List.length speedups in
  let geomean l =
    exp (List.fold_left (fun a x -> a +. log x) 0.0 l /. float_of_int (List.length l))
  in
  Printf.printf "(a) IS speedup over FS across %d tests:\n  " n;
  List.iteri
    (fun i s ->
      Printf.printf "%5.1f " s;
      if (i + 1) mod 20 = 0 then Printf.printf "\n  ")
    speedups;
  Printf.printf "\n  geomean speedup = %.1fx  (min %.1fx, max %.1fx)\n"
    (geomean speedups)
    (List.fold_left Float.min infinity speedups)
    (List.fold_left Float.max 0.0 speedups);
  let same = List.length (List.filter (fun q -> q <= 1.0 +. 1e-9) qualities) in
  Printf.printf
    "(b) quality (IS peak / FS peak): %d/%d tests at FS-level optimality; worst %.3f\n"
    same n
    (List.fold_left Float.max 0.0 qualities)
