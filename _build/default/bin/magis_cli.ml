(** MAGIS command-line interface.

    - [magis_cli list] — available workloads (Table 2);
    - [magis_cli inspect WORKLOAD] — graph statistics, D-Graph dimensions
      and F-Tree candidates;
    - [magis_cli optimize WORKLOAD (--max-overhead P | --mem-ratio R)] —
      run the optimizer and print the resulting plan. *)

open Magis

let mb b = float_of_int b /. 1e6
let ms s = s *. 1e3

let load name full =
  let w = Zoo.find name in
  (w, w.build (if full then Zoo.Full else Zoo.Quick))

let cmd_list () =
  Printf.printf "%-12s %6s  %s\n" "Name" "Batch" "Configuration";
  List.iter
    (fun (w : Zoo.workload) ->
      Printf.printf "%-12s %6d  %s\n" w.name w.batch w.config)
    Zoo.all

let cmd_inspect name full =
  let w, g = load name full in
  let cache = Op_cost.create Hardware.default in
  let base = Simulator.run cache g (Graph.program_order g) in
  Printf.printf "%s (batch %d, %s)\n" w.name w.batch w.config;
  Printf.printf "  operators:   %d\n" (Graph.n_nodes g);
  Printf.printf "  weights:     %.1f MB\n" (mb (Graph.weight_bytes g));
  Printf.printf "  peak memory: %.1f MB (unoptimized)\n" (mb base.peak_mem);
  Printf.printf "  step time:   %.2f ms (unoptimized)\n" (ms base.latency);
  let dg = Dgraph.build g in
  let comps = Dgraph.components dg in
  Printf.printf "  graph-level dimensions: %d\n" (List.length comps);
  let hot = Lifetime.hotspots base.analysis in
  Printf.printf "  memory hot-spots: %d tensors, %.1f MB\n"
    (Util.Int_set.cardinal hot)
    (mb (Lifetime.hotspot_bytes base.analysis));
  let t = Ftree.construct g ~hotspots:hot in
  Printf.printf "  fission candidates (F-Tree): %d\n" (Ftree.n_entries t);
  for i = 0 to Ftree.n_entries t - 1 do
    let e = Ftree.entry t i in
    Printf.printf "    [%d] parent=%d |S|=%d\n" i e.parent
      (Util.Int_set.cardinal (Fission.members e.fission))
  done

let cmd_optimize name full overhead mem_ratio budget =
  let w, g = load name full in
  let cache = Op_cost.create Hardware.default in
  let base = Simulator.run cache g (Graph.program_order g) in
  let config = { Search.default_config with time_budget = budget } in
  let result =
    match (overhead, mem_ratio) with
    | Some o, _ -> Search.optimize_memory ~config cache ~overhead:o g
    | None, Some r -> Search.optimize_latency ~config cache ~mem_ratio:r g
    | None, None -> Search.optimize_memory ~config cache ~overhead:0.10 g
  in
  let best = result.best in
  Printf.printf "%s: %.1f MB / %.2f ms  ->  %.1f MB / %.2f ms\n" w.name
    (mb base.peak_mem) (ms base.latency) (mb best.peak_mem) (ms best.latency);
  Printf.printf "  memory ratio %.2f, latency %+.1f%%\n"
    (float_of_int best.peak_mem /. float_of_int base.peak_mem)
    (100.0 *. (best.latency -. base.latency) /. base.latency);
  Printf.printf "  plan: %d fission region(s), %d swap(s); searched %d states\n"
    (List.length (Ftree.enabled_indices best.ftree))
    (Graph.fold (fun n a -> if n.op = Op.Store then a + 1 else a) best.graph 0)
    result.stats.iterations;
  List.iter
    (fun i ->
      let f = Ftree.fission_at best.ftree i in
      Printf.printf "    fission: %d ops into %d parts\n"
        (Util.Int_set.cardinal (Fission.members f))
        (Fission.fission_number f))
    (Ftree.enabled_indices best.ftree)

let cmd_codegen name full budget output =
  let _, g = load name full in
  let cache = Op_cost.create Hardware.default in
  let config = { Search.default_config with time_budget = budget } in
  let result = Search.optimize_memory ~config cache ~overhead:0.10 g in
  let best = result.best in
  let code =
    Pytorch_codegen.emit_expanded
      ~module_doc:
        (Printf.sprintf "MAGIS-optimized %s (peak %.1f MB, %+.1f%% latency)"
           name
           (mb best.peak_mem)
           (100.0
           *. (best.latency -. (Simulator.run cache g (Graph.program_order g)).latency)
           /. (Simulator.run cache g (Graph.program_order g)).latency))
      best.graph best.ftree
      ~reschedule:(fun g' -> Reorder.schedule ~max_states:0 g')
  in
  match output with
  | None -> print_string code
  | Some path ->
      let oc = open_out path in
      output_string oc code;
      close_out oc;
      Printf.printf "wrote %s (%d lines)\n" path
        (List.length (String.split_on_char '\n' code))

let cmd_export name full fmt_ =
  let _, g = load name full in
  match fmt_ with
  | "dot" -> print_string (Export.to_dot g)
  | "text" -> print_string (Export.to_text g)
  | "summary" -> print_endline (Export.summary g)
  | other -> Printf.eprintf "unknown format %s (dot|text|summary)\n" other

open Cmdliner

let workload = Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")
let full = Arg.(value & flag & info [ "full" ] ~doc:"Paper-scale model configuration.")

let list_cmd = Cmd.v (Cmd.info "list" ~doc:"List workloads") Term.(const cmd_list $ const ())

let inspect_cmd =
  Cmd.v (Cmd.info "inspect" ~doc:"Analyze a workload")
    Term.(const cmd_inspect $ workload $ full)

let optimize_cmd =
  let overhead =
    Arg.(value & opt (some float) None
         & info [ "max-overhead" ] ~doc:"Minimize memory; allow this latency overhead (e.g. 0.10).")
  in
  let mem_ratio =
    Arg.(value & opt (some float) None
         & info [ "mem-ratio" ] ~doc:"Minimize latency; cap memory at this ratio of the unoptimized peak.")
  in
  let budget =
    Arg.(value & opt float 10.0 & info [ "budget" ] ~doc:"Search seconds.")
  in
  Cmd.v (Cmd.info "optimize" ~doc:"Optimize a workload")
    Term.(const cmd_optimize $ workload $ full $ overhead $ mem_ratio $ budget)

let codegen_cmd =
  let budget =
    Arg.(value & opt float 10.0 & info [ "budget" ] ~doc:"Search seconds.")
  in
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~doc:"Write the Python module here.")
  in
  Cmd.v
    (Cmd.info "codegen"
       ~doc:"Optimize a workload and emit PyTorch code for the result")
    Term.(const cmd_codegen $ workload $ full $ budget $ output)

let export_cmd =
  let fmt_ =
    Arg.(value & opt string "summary"
         & info [ "format" ] ~doc:"dot, text or summary.")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export a workload graph")
    Term.(const cmd_export $ workload $ full $ fmt_)

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "magis" ~doc:"MAGIS memory optimizer for DNN graphs")
          [ list_cmd; inspect_cmd; optimize_cmd; codegen_cmd; export_cmd ]))
