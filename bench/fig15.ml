(** Figure 15: optimization-time breakdown of a 1-minute ViT optimization:
    counts and cumulative seconds of the transformation, scheduling,
    simulation and hash-test phases, plus the number of duplicate graphs
    filtered by the hash test. *)

open Magis

let run (env : Common.env) =
  let w = Zoo.find "ViT-base" in
  let g = Common.workload_graph env w in
  Common.hr
    (Printf.sprintf
       "Figure 15: optimization time breakdown, ViT (batch %d), %.0fs budget"
       w.batch env.budget);
  let config = Common.search_config env in
  let r = Search.optimize_latency ~config env.cache ~mem_ratio:0.6 g in
  let st = r.stats in
  let total =
    st.t_transform +. st.t_sched +. st.t_simul +. st.t_hash +. st.t_bound
  in
  Printf.printf "%-10s %10s %10s %10s %10s %10s %10s %10s %10s\n" "" "Total"
    "Trans." "Sched." "Simul." "Hash" "Bound" "Filtered" "PrunedLB";
  Printf.printf "%-10s %10d %10d %10d %10d %10d %10d %10d %10d\n" "Count"
    (st.n_transform + st.n_sched + st.n_simul + st.n_hash + st.n_bound_calls)
    st.n_transform st.n_sched st.n_simul st.n_hash st.n_bound_calls
    st.n_filtered st.n_pruned_lb;
  Printf.printf "%-10s %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f %10s %10s\n"
    "Cost(secs)" total st.t_transform st.t_sched st.t_simul st.t_hash
    st.t_bound "/" "/";
  Printf.printf "\nIterations: %d; best peak %.1f MB, best latency %.2f ms\n"
    st.iterations
    (float_of_int r.best.peak_mem /. 1e6)
    (r.best.latency *. 1e3);
  let hits, misses = Op_cost.stats env.cache in
  Printf.printf "Operator cost cache: %d hits, %d misses\n" hits misses;
  Printf.printf "Simulation cache: %d hits, %d misses\n" st.n_sim_hit
    st.n_sim_miss;
  Printf.printf "Expansion workers: %d; per-domain busy seconds: [%s]\n"
    env.jobs
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%.2f") st.domain_time)))
