(** Figure 15: optimization-time breakdown of a 1-minute ViT optimization:
    counts and cumulative seconds of the transformation, scheduling,
    simulation and hash-test phases, plus the number of duplicate graphs
    filtered by the hash test. *)

open Magis

let run (env : Common.env) =
  let w = Zoo.find "ViT-base" in
  let g = Common.workload_graph env w in
  Common.hr
    (Printf.sprintf
       "Figure 15: optimization time breakdown, ViT (batch %d), %.0fs budget"
       w.batch env.budget);
  let config = Common.search_config env in
  let r = Search.optimize_latency ~config env.cache ~mem_ratio:0.6 g in
  (* the phase table, cache and worker lines all come from the shared
     stat renderer (also used by [magis_cli optimize]) *)
  Format.printf "%a%!" Search.pp_stats r.stats;
  Printf.printf "Best peak %.1f MB, best latency %.2f ms\n"
    (float_of_int r.best.peak_mem /. 1e6)
    (r.best.latency *. 1e3);
  let hits, misses = Op_cost.stats env.cache in
  Printf.printf "Operator cost cache: %d hits, %d misses\n" hits misses
