(** Bound analysis experiment: admissibility gap of the
    schedule-independent peak-memory bounds over the Table 2 zoo, cost
    of the full record vs the search probe, and an A/B of the
    branch-and-bound pruning (identical best states, simulations saved
    by the lower-bound test). *)

open Magis

let now () = Unix.gettimeofday ()

let bounds_table (env : Common.env) =
  Common.hr "Bounds: admissible lower bound vs simulated peak (Table 2 zoo)";
  Printf.printf "%-12s %9s %9s %9s %9s %6s %8s %9s\n" "Workload" "LB" "Peak"
    "Greedy" "Total" "Gap" "full ms" "probe ms";
  List.iter
    (fun (w : Zoo.workload) ->
      let g = Common.workload_graph env w in
      let t0 = now () in
      let b = Membound.compute g in
      let t_full = (now () -. t0) *. 1e3 in
      let t0 = now () in
      let probe = Membound.lower_bound ~sample:8 g in
      let t_probe = (now () -. t0) *. 1e3 in
      let base = Simulator.run env.cache g (Graph.program_order g) in
      assert (probe <= b.lower);
      Printf.printf "%-12s %9.1f %9.1f %9.1f %9.1f %6.2f %8.2f %9.3f\n" w.name
        (float_of_int b.lower /. 1e6)
        (float_of_int base.peak_mem /. 1e6)
        (float_of_int b.ub_greedy /. 1e6)
        (float_of_int b.ub_total /. 1e6)
        (float_of_int base.peak_mem /. float_of_int (max 1 b.lower))
        t_full t_probe)
    Zoo.all

(** One pruning A/B: same workload, same mode, same iteration cap,
    private simulation caches (a shared cache would let the second run
    replay the first).  The best states must be bit-identical — the
    bound test only skips work the admission test would reject. *)
let prune_ab (env : Common.env) name (mode_name : string) run_mode =
  let search prune =
    let config =
      { (Common.search_config env) with
        sim_cache = Some (Sim_cache.create ());
        time_budget = 1e9;
        max_iterations = min env.iters 40;
        prune_bounds = prune }
    in
    run_mode ~config
  in
  let on = search true and off = search false in
  let identical =
    on.Search.best.peak_mem = off.Search.best.peak_mem
    && on.best.latency = off.best.latency
  in
  Printf.printf "%-12s %-8s %9s %8d %8d %8d %8.1f %8.1f\n" name mode_name
    (if identical then "yes" else "NO")
    on.stats.n_pruned_lb on.stats.n_bound_calls
    (off.stats.n_simul - on.stats.n_simul)
    (on.stats.t_bound *. 1e3)
    ((off.stats.t_sched +. off.stats.t_simul -. on.stats.t_sched
     -. on.stats.t_simul)
    *. 1e3);
  if not identical then
    Printf.printf
      "  !! pruning changed the best state: %d/%.6f vs %d/%.6f\n"
      on.best.peak_mem on.best.latency off.best.peak_mem off.best.latency

let prune_table (env : Common.env) =
  Common.hr "Branch-and-bound pruning A/B (identical bests required)";
  Printf.printf "%-12s %-8s %9s %8s %8s %8s %8s %8s\n" "Workload" "Mode"
    "Identical" "Pruned" "Probes" "SimsSvd" "t_bnd ms" "t_svd ms";
  let w, g = Common.smallest_workload env in
  let subjects = [ (w.name, g); ("ViT-base", Common.workload_graph env (Zoo.find "ViT-base")) ] in
  List.iter
    (fun (name, g) ->
      prune_ab env name "min-mem" (fun ~config ->
          Search.optimize_memory ~config env.cache ~overhead:0.10 g);
      prune_ab env name "min-lat" (fun ~config ->
          Search.optimize_latency ~config env.cache ~mem_ratio:0.7 g))
    subjects

let run (env : Common.env) =
  bounds_table env;
  prune_table env
