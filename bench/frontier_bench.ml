(** Frontier service (the [frontier] experiment): one harvesting search
    sweeps a workload's whole memory–latency Pareto frontier; the cached
    frontier then answers an 8-step budget ladder with zero further
    searches.

    Everything printed under a counter key is deterministic — the search
    is iteration-capped, serial and uncached — and gated exactly by the
    CI frontier-smoke job against [bench/baselines/frontier.json]:

    - harvesting must be trajectory-invisible: the best state of a
      harvesting run must be bit-identical to a plain run's;
    - the frontier's point/harvest/prune/evict/delta counters;
    - a save/load round-trip through the on-disk cache must preserve
      every point and answer the ladder identically with zero searches;
    - the hardware zoo: five registered profiles with five distinct
      fingerprints, and the batch-sweep helper's graph sizes. *)

open Magis

let run (env : Common.env) =
  Common.hr "Frontier: one search, a whole Pareto frontier";
  let t0 = Unix.gettimeofday () in
  let w = Zoo.find "UNet" in
  let g = Common.workload_graph env w in
  let iters = min env.iters 12 in
  let config = { Search.default_config with max_iterations = iters } in
  let mode = Search.Min_memory { lat_limit = infinity } in
  let hw = Hardware.default in

  (* A/B: the harvest hook must not perturb the search trajectory *)
  let plain = Search.run ~config (Op_cost.create hw) mode g in
  let fr, harvested = Frontier_build.build ~config (Op_cost.create hw) mode g in
  let ab_identical =
    plain.Search.best.Mstate.peak_mem = harvested.Search.best.Mstate.peak_mem
    && plain.Search.best.Mstate.latency = harvested.Search.best.Mstate.latency
    && plain.Search.best.Mstate.schedule = harvested.Search.best.Mstate.schedule
  in
  Printf.printf "harvest A/B: best %s (plain %.1f MB, harvested %.1f MB)\n"
    (if ab_identical then "bit-identical" else "DIVERGED")
    (float_of_int plain.Search.best.Mstate.peak_mem /. 1e6)
    (float_of_int harvested.Search.best.Mstate.peak_mem /. 1e6);

  (* one search swept this many states into this many frontier points *)
  let c = Frontier.counters fr in
  let fulls, deltas = Frontier.delta_stats fr in
  Printf.printf
    "frontier: %d points (of %d harvested; %d pruned, %d evicted), %d \
     full + %d delta-coded schedules, %d resident ints\n"
    (Frontier.size fr) c.Frontier.harvested c.Frontier.pruned
    c.Frontier.evicted fulls deltas (Frontier.resident_ints fr);

  (* the cached frontier answers a budget ladder with zero searches *)
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "magis-frontier-bench-%d" (Unix.getpid ()))
  in
  let key = Frontier_build.key ~config mode ~hw g in
  Frontier_cache.save ~dir ~key fr;
  let reloaded =
    match Frontier_cache.load ~dir ~key with
    | Some r -> r
    | None -> failwith "frontier bench: cache miss right after save"
  in
  let roundtrip_identical = Frontier.points reloaded = Frontier.points fr in
  let ladder = [ 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ] in
  let answers =
    List.map (fun ratio -> Frontier_build.query_ratio reloaded ~ratio) ladder
  in
  let feasible = List.length (List.filter Option.is_some answers) in
  let ladder_matches_original =
    answers = List.map (fun r -> Frontier_build.query_ratio fr ~ratio:r) ladder
  in
  List.iter2
    (fun ratio ans ->
      match ans with
      | Some (p : Frontier.point) ->
          Printf.printf "  budget %.2f: %.1f MB / %.2f ms\n" ratio
            (float_of_int p.Frontier.peak /. 1e6)
            (p.Frontier.latency *. 1e3)
      | None -> Printf.printf "  budget %.2f: infeasible\n" ratio)
    ladder answers;
  Printf.printf "%d/%d budgets feasible from the cache, 0 extra searches\n"
    feasible (List.length ladder);

  (* hardware zoo: named profiles, all-field fingerprints, batch sweep *)
  let fps = List.map Hardware.fingerprint Hardware.profiles in
  let distinct = List.length (List.sort_uniq compare fps) in
  Printf.printf "hardware zoo: %d profiles (%s), %d distinct fingerprints\n"
    (List.length Hardware.profiles)
    (String.concat ", " Hardware.names)
    distinct;
  let sweep = Zoo.batch_sweep w ~batches:[ 1; 2; 4 ] in
  let sweep_nodes =
    List.map (fun (sw : Zoo.workload) -> Graph.n_nodes (sw.build env.scale))
      sweep
  in
  List.iter2
    (fun (sw : Zoo.workload) n ->
      Printf.printf "  %s batch %d: %d nodes\n" sw.name sw.batch n)
    sweep sweep_nodes;

  Common.write_stats_json env
    ([ ("n_nodes", Json.Int (Graph.n_nodes g));
       ("searches", Json.Int 1);
       ("harvest_ab_identical", Json.Bool ab_identical);
       ("points", Json.Int (Frontier.size fr));
       ("harvested", Json.Int c.Frontier.harvested);
       ("pruned", Json.Int c.Frontier.pruned);
       ("evicted", Json.Int c.Frontier.evicted);
       ("delta_fulls", Json.Int fulls);
       ("delta_deltas", Json.Int deltas);
       ("resident_ints", Json.Int (Frontier.resident_ints fr));
       ("roundtrip_identical", Json.Bool roundtrip_identical);
       ("ladder_matches_original", Json.Bool ladder_matches_original);
       ("queries", Json.Int (List.length ladder));
       ("feasible", Json.Int feasible);
       ("hw_profiles", Json.Int (List.length Hardware.profiles));
       ("hw_fingerprints_distinct", Json.Int distinct) ]
    @ List.map2
        (fun (sw : Zoo.workload) n ->
          (Printf.sprintf "sweep_nodes_b%d" sw.Zoo.batch, Json.Int n))
        sweep sweep_nodes
    @ [ ("wall_s", Json.Float (Unix.gettimeofday () -. t0)) ])
