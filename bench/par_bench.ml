(** Parallel expansion and simulation-cache speedup (the scaling axis
    the paper's Fig. 15 breakdown motivates): A-B runs of the same
    iteration-capped search on the smallest Table-2 workload.

    Three configurations, all required to return bit-identical best
    states:

    - [jobs=1], cold simulation cache — the legacy serial baseline;
    - [jobs=N], cold cache — domain-pool scaling (bounded by the
      machine's core count: on a single-core container this is ~1×);
    - [jobs=N], warm cache — a replay over the baseline's cache, where
      every evaluation short-circuits both rescheduling and simulation.

    The wall-clock table and the identical-best check are printed so CI
    and EXPERIMENTS.md can record them. *)

open Magis

let run (env : Common.env) =
  let w, g = Common.smallest_workload env in
  let iters = min env.iters 40 in
  let jobs = max 2 env.jobs in
  Common.hr
    (Printf.sprintf
       "Parallel expansion & simulation cache: %s (%d ops), %d iterations"
       w.name (Graph.n_nodes g) iters);
  Printf.printf "cores visible to the runtime: %d\n"
    (Domain.recommended_domain_count ());
  let run_one ~label ~jobs ~sim =
    let config =
      { (Common.search_config env) with
        time_budget = 1e9; max_iterations = iters; jobs;
        sim_cache = Some sim }
    in
    let t0 = Unix.gettimeofday () in
    let r = Search.optimize_memory ~config env.cache ~overhead:0.10 g in
    let wall = Unix.gettimeofday () -. t0 in
    (label, r, wall)
  in
  let cold_serial = Sim_cache.create () in
  let cold_par = Sim_cache.create () in
  (* sequence explicitly: the warm replay must run after the serial run
     has filled [cold_serial] *)
  let serial = run_one ~label:"jobs=1, cold cache" ~jobs:1 ~sim:cold_serial in
  let par_cold =
    run_one ~label:(Printf.sprintf "jobs=%d, cold cache" jobs) ~jobs
      ~sim:cold_par
  in
  let warm =
    run_one ~label:(Printf.sprintf "jobs=%d, warm cache" jobs) ~jobs
      ~sim:cold_serial
  in
  let warm_serial =
    run_one ~label:"jobs=1, warm cache" ~jobs:1 ~sim:cold_serial
  in
  let runs = [ serial; par_cold; warm; warm_serial ] in
  let _, base, base_wall = List.hd runs in
  Printf.printf "%-22s %10s %10s %12s %12s\n" "" "Wall(s)" "Speedup"
    "Cache hits" "Cache miss";
  List.iter
    (fun (label, (r : Search.result), wall) ->
      Printf.printf "%-22s %10.2f %9.2fx %12d %12d\n" label wall
        (base_wall /. wall) r.stats.n_sim_hit r.stats.n_sim_miss)
    runs;
  let identical =
    List.for_all
      (fun (_, (r : Search.result), _) ->
        r.best.peak_mem = base.best.peak_mem
        && r.best.latency = base.best.latency
        && r.best.schedule = base.best.schedule)
      runs
  in
  Printf.printf
    "identical best across all runs: %b (peak %.1f MB, latency %.2f ms)\n"
    identical
    (float_of_int base.best.peak_mem /. 1e6)
    (base.best.latency *. 1e3);
  let _, par_run, _ = List.nth runs 1 in
  Printf.printf "per-domain busy seconds (jobs=%d cold): [%s]\n" jobs
    (String.concat "; "
       (Array.to_list
          (Array.map (Printf.sprintf "%.2f") par_run.stats.domain_time)));
  let _, serial_run, serial_wall = serial in
  let _, warm_run, warm_wall = warm in
  Common.write_stats_json env
    [
      ("par_identical", Json.Bool identical);
      ("par_iterations", Json.Int serial_run.stats.iterations);
      ("par_best_peak", Json.Int base.best.peak_mem);
      ("par_serial_sim_hits", Json.Int serial_run.stats.n_sim_hit);
      ("par_serial_sim_misses", Json.Int serial_run.stats.n_sim_miss);
      ("par_cold_sim_hits", Json.Int par_run.stats.n_sim_hit);
      ("par_cold_sim_misses", Json.Int par_run.stats.n_sim_miss);
      ("par_warm_sim_hits", Json.Int warm_run.stats.n_sim_hit);
      ("par_warm_sim_misses", Json.Int warm_run.stats.n_sim_miss);
      (* timing keys: reported, not gated *)
      ("wall_serial_s", Json.Float serial_wall);
      ("wall_warm_s", Json.Float warm_wall);
      ("speedup_warm", Json.Float (serial_wall /. warm_wall));
    ];
  if not identical then failwith "parallel/serial best states diverged"
