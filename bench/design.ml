(** Design-choice ablations beyond the paper's Fig. 13 — the engineering
    decisions DESIGN.md calls out:

    - diversified popping (every 4th pop from a random queue bucket) vs
      pure greedy best-first;
    - the compound sweep rules vs only the paper's four single-step
      scheduling rules;
    - greedy-only candidate scheduling vs a DP budget per evaluation;
    - the memory-planner strategies (best-fit vs first-fit vs bump) on
      the optimized schedules. *)

open Magis

type variant = { label : string; config : Search.config }

let variants base =
  [
    { label = "default"; config = base };
    { label = "no-diversify"; config = { base with diversify_pops = false } };
    { label = "no-sweep-rules"; config = { base with use_sweep_rules = false } };
    { label = "dp-eval(600)"; config = { base with sched_states = 600 } };
  ]

let run (env : Common.env) =
  Common.hr "Design ablation: search variants (memory @ <10% overhead)";
  let workloads = Zoo.ablation_trio in
  List.iter
    (fun wname ->
      let w = Zoo.find wname in
      let g = Common.workload_graph env w in
      let base = Common.baseline env g in
      Printf.printf "%s:\n" w.name;
      List.iter
        (fun v ->
          let r =
            Search.optimize_memory ~config:v.config env.cache ~overhead:0.10 g
          in
          Printf.printf "  %-16s ratio %.2f  lat %+5.1f%%  iters %d\n%!"
            v.label
            (Common.ratio_of
               { Outcome.system = ""; peak_mem = r.best.peak_mem;
                 latency = r.best.latency; feasible = true }
               ~base)
            (100.0 *. Common.overhead_of
               { Outcome.system = ""; peak_mem = r.best.peak_mem;
                 latency = r.best.latency; feasible = true }
               ~base)
            r.stats.iterations)
        (variants (Common.search_config env)))
    workloads;
  Common.hr "Design ablation: memory-planner strategies";
  List.iter
    (fun wname ->
      let w = Zoo.find wname in
      let g = Common.workload_graph env w in
      let order = Graph.program_order g in
      let report strategy label =
        let p = Allocator.plan_schedule ~strategy g order in
        Printf.printf "  %-10s arena %8.1f MB (%.2fx of live peak)\n" label
          (float_of_int p.arena_size /. 1e6)
          (Allocator.fragmentation p)
      in
      Printf.printf "%s:\n" w.name;
      report Allocator.Best_fit "best-fit";
      report Allocator.First_fit "first-fit";
      report Allocator.Bump "bump")
    workloads
