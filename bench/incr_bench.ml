(** Incremental search core (the [incr] experiment): how much of a
    single-rewrite candidate's evaluation the O(Δ) structures save, and
    proof that they are trajectory-invisible.

    Part 1 — microbenchmark.  For every rewrite of the two smallest
    Table-2 workloads and a seeded Randnet, time the two per-candidate
    evaluation pipelines back to back:

    - scratch: {!Liveness.compute} + {!Membound.probe_create} + a full
      {!Reorder.schedule} of the child graph — what every candidate
      cost before the incremental core;
    - incremental: {!Liveness.delta_update} + {!Membound.probe_update}
      (falling back to the dense {!Membound.lower_bound} when the dirty
      cone exceeds the search's cap, exactly as the search does) + a
      windowed {!Incremental.reschedule} against the parent schedule.

    The headline number is the per-candidate speedup (the README quotes
    ≥3×; the schedule window dominates).  Every delta result is checked
    against the scratch oracle while timing is off.

    Part 2 — in-search A/B.  The same iteration-capped search with
    [config.incremental] on and off must return bit-identical best
    states (both bound paths are admissible, so only counters may
    differ); the cheap-tier configuration is reported alongside unless
    [--no-cheap-tier].

    With [--stats-json] the deterministic counters of both parts are
    written for the CI perf-smoke gate. *)

open Magis

let now () = Unix.gettimeofday ()

let rule_ctx g =
  let hot =
    Util.Int_set.of_list
      (List.filteri (fun i _ -> i mod 3 = 0) (Graph.topo_order g))
  in
  {
    Rule.hotspots = hot;
    frozen = Util.Int_set.empty;
    schedule_pos = (fun _ -> None);
    max_per_rule = 4;
    restrict_to_hotspots = false;
  }

let rewrites g =
  let ctx = rule_ctx g in
  List.concat_map
    (fun (r : Rule.t) -> r.apply ctx g)
    (Sched_rules.all @ Taso_rules.all)

(** The search's dirty-cone bail-out policy, mirrored here so the
    benchmark measures the pipeline the search actually runs. *)
let max_dirty n = n / 3

type micro = {
  m_name : string;
  m_rewrites : int;
  m_delta : int;  (** candidates served by the delta path *)
  m_bail : int;  (** candidates that fell back to the dense bound *)
  m_scratch_us : float;  (** mean scratch evaluation, µs/candidate *)
  m_incr_us : float;  (** mean incremental evaluation, µs/candidate *)
}

let micro_one name g =
  let size_of = Lifetime.default_size g in
  let lv = Liveness.compute g in
  let probe = Membound.probe_create ~sample:8 lv in
  let parent_sched = Reorder.schedule ~size_of g in
  let all_rws = rewrites g in
  let cap = max_dirty (Graph.n_nodes g) in
  (* correctness first, untimed: every delta result must match the
     scratch oracle, and every spliced schedule must be legal *)
  let n_delta = ref 0 and n_bail = ref 0 in
  List.iter
    (fun (rw : Rule.rewrite) ->
      (match
         Liveness.delta_update ~max_dirty:cap lv rw.graph
           ~mutated:rw.touched_old
       with
      | Some (lv', delta) ->
          incr n_delta;
          let scratch = Liveness.compute rw.graph in
          if not (Liveness.equivalent lv' scratch) then
            failwith (name ^ ": delta_update diverged from scratch");
          let pb = Membound.probe_update probe lv' ~delta in
          let ps = Membound.probe_create ~sample:8 scratch in
          if Membound.probe_lower pb <> Membound.probe_lower ps then
            failwith (name ^ ": probe_update diverged from scratch")
      | None -> incr n_bail);
      let order, _ =
        Incremental.reschedule ~old_graph:g ~new_graph:rw.graph
          ~old_schedule:parent_sched ~mutated_old:rw.touched_old
          ~size_of:(Lifetime.default_size rw.graph) ()
      in
      if not (Graph.is_valid_order rw.graph order) then
        failwith (name ^ ": incremental reschedule produced illegal order"))
    all_rws;
  (* timed: whole-pipeline cost per candidate over a deterministic
     subset (the scratch tier's full DP schedule costs seconds per
     candidate on the zoo models — timing every rewrite would blow the
     CI budget; correctness above still covers them all) *)
  let rws = Util.take 10 all_rws in
  let reps = 2 in
  let t0 = now () in
  for _ = 1 to reps do
    List.iter
      (fun (rw : Rule.rewrite) ->
        let scratch = Liveness.compute rw.graph in
        ignore (Membound.probe_lower (Membound.probe_create ~sample:8 scratch));
        ignore (Reorder.schedule ~size_of:(Lifetime.default_size rw.graph)
                  rw.graph))
      rws
  done;
  let t_scratch = now () -. t0 in
  let t0 = now () in
  for _ = 1 to reps do
    List.iter
      (fun (rw : Rule.rewrite) ->
        (match
           Liveness.delta_update ~max_dirty:cap lv rw.graph
             ~mutated:rw.touched_old
         with
        | Some (lv', delta) ->
            ignore (Membound.probe_lower (Membound.probe_update probe lv' ~delta))
        | None ->
            ignore
              (Membound.lower_bound
                 ~size_of:(Lifetime.default_size rw.graph)
                 ~sample:8 rw.graph));
        ignore
          (Incremental.reschedule ~old_graph:g ~new_graph:rw.graph
             ~old_schedule:parent_sched ~mutated_old:rw.touched_old
             ~size_of:(Lifetime.default_size rw.graph) ()))
      rws
  done;
  let t_incr = now () -. t0 in
  let per t = t /. float_of_int (reps * max 1 (List.length rws)) *. 1e6 in
  {
    m_name = name;
    m_rewrites = List.length all_rws;
    m_delta = !n_delta;
    m_bail = !n_bail;
    m_scratch_us = per t_scratch;
    m_incr_us = per t_incr;
  }

(* ------------------------------------------------------------------ *)
(* Part 2: in-search A/B                                               *)
(* ------------------------------------------------------------------ *)

(** Latency mode: its δ-admission prunes on the {e memory} bound
    ([Prune_mem]), which is the probe the incremental structures
    accelerate — memory mode prunes on the latency bound and would
    leave the delta path cold. *)
let search_one (env : Common.env) g ~incremental ~cheap_tier =
  let config =
    { (Common.search_config env) with
      sim_cache = Some (Sim_cache.create ());
      time_budget = 1e9;
      max_iterations = min env.iters 30;
      incremental;
      cheap_tier }
  in
  Search.optimize_latency ~config env.cache ~mem_ratio:0.7 g

let run (env : Common.env) =
  Common.hr "Incremental search core: O(Δ) candidate evaluation";
  let lm =
    Transformer.build_lm
      { Transformer.batch = 8; seq_len = 32; hidden = 64; heads = 4;
        layers = 2; vocab = 128; dtype = Shape.F32 }
  in
  let subjects =
    [
      ("unet", Common.workload_graph env (Zoo.find "unet"));
      ("unet++", Common.workload_graph env (Zoo.find "unet++"));
      ("randnet", Randnet.build ~cfg:{ Randnet.default with seed = 1 } ());
      ("lm", lm);
    ]
  in
  let micros = List.map (fun (n, g) -> micro_one n g) subjects in
  Printf.printf "%-10s %6s %6s %6s %12s %12s %9s\n" "Model" "Rw" "Delta"
    "Bail" "Scratch µs" "Incr µs" "Speedup";
  List.iter
    (fun m ->
      Printf.printf "%-10s %6d %6d %6d %12.1f %12.1f %8.2fx\n" m.m_name
        m.m_rewrites m.m_delta m.m_bail m.m_scratch_us m.m_incr_us
        (m.m_scratch_us /. m.m_incr_us))
    micros;
  let tot_scratch = List.fold_left (fun a m -> a +. m.m_scratch_us) 0. micros in
  let tot_incr = List.fold_left (fun a m -> a +. m.m_incr_us) 0. micros in
  let speedup = tot_scratch /. tot_incr in
  Printf.printf "overall per-candidate evaluation speedup: %.2fx\n" speedup;
  (* in-search A/B on the LM benchmark, latency mode *)
  let ab_name = "lm" in
  let on = search_one env lm ~incremental:true ~cheap_tier:false in
  let off = search_one env lm ~incremental:false ~cheap_tier:false in
  let identical =
    on.Search.best.peak_mem = off.Search.best.peak_mem
    && on.best.latency = off.best.latency
    && on.best.schedule = off.best.schedule
  in
  Printf.printf
    "A/B %s (%d iterations): identical best %b; incremental run: %d/%d \
     bounds via delta, cut reuse %.0f%%, %d sched fallback(s), %.0f%% nodes \
     re-placed\n"
    ab_name on.stats.iterations identical on.stats.n_lv_delta
    on.stats.n_bound_calls
    (100.0 *. Search.cut_reuse_rate on.stats)
    on.stats.n_sched_fallback
    (100.0 *. Search.resched_frac on.stats);
  if not identical then
    failwith "incremental on/off diverged: the delta path is not invisible";
  let cheap =
    if env.no_cheap_tier then None
    else begin
      let r = search_one env lm ~incremental:true ~cheap_tier:true in
      Printf.printf
        "cheap tier: %d list-scheduled, %d promoted to exact, best %.1f MB\n"
        r.stats.n_cheap_sched r.stats.n_promoted
        (float_of_int r.best.peak_mem /. 1e6);
      Some r
    end
  in
  let micro_fields =
    List.concat_map
      (fun m ->
        let p = "micro_" ^ m.m_name ^ "_" in
        [
          (p ^ "rewrites", Json.Int m.m_rewrites);
          (p ^ "delta", Json.Int m.m_delta);
          (p ^ "bail", Json.Int m.m_bail);
          (* timing keys: reported, not gated *)
          (p ^ "t_scratch_us", Json.Float m.m_scratch_us);
          (p ^ "t_incr_us", Json.Float m.m_incr_us);
        ])
      micros
  in
  Common.write_stats_json env
    (micro_fields
    @ [
        ("speedup_overall", Json.Float speedup);
        ("ab_identical", Json.Bool identical);
        ("ab_iterations", Json.Int on.stats.iterations);
        ("ab_best_peak", Json.Int on.best.peak_mem);
        ("ab_n_bound_calls", Json.Int on.stats.n_bound_calls);
        ("ab_n_lv_delta", Json.Int on.stats.n_lv_delta);
        ("ab_n_cut_reused", Json.Int on.stats.n_cut_reused);
        ("ab_n_cut_recomputed", Json.Int on.stats.n_cut_recomputed);
        ("ab_n_sched_fallback", Json.Int on.stats.n_sched_fallback);
        ("ab_n_resched_nodes", Json.Int on.stats.n_resched_nodes);
        ("ab_n_sched_nodes", Json.Int on.stats.n_sched_nodes);
        ("ab_off_n_lv_delta", Json.Int off.stats.n_lv_delta);
        ("ab_off_n_bound_calls", Json.Int off.stats.n_bound_calls);
      ]
    @
    match cheap with
    | None -> []
    | Some r ->
        [
          ("cheap_n_sched", Json.Int r.stats.n_cheap_sched);
          ("cheap_n_promoted", Json.Int r.stats.n_promoted);
          ("cheap_best_peak", Json.Int r.best.peak_mem);
        ])
