(** Optimization service (the [serve] experiment): an in-process daemon
    driven through the real socket protocol.

    Phase A is sequential and deterministic — every counter it emits is
    gated exactly by the CI perf-smoke job:

    - three identical requests must return bit-identical peaks while
      the shared simulation cache warms up across them;
    - a request with an already-expired deadline must be rejected with
      the structured [deadline] error;
    - a paused burst overfills the bounded queue, producing an exact
      number of [overloaded] rejections, one [duplicate] rejection and
      a health snapshot at the top of the load-shedding ladder, after
      which resuming must serve every queued request.

    Phase B is the concurrent load generator ({!Loadgen.run_load});
    its latency percentiles and cache hit rate depend on scheduling, so
    they are reported under [wall_*] keys (skipped by the gate) while
    the sent/completed/error counts stay gated. *)

module P = Magis_serve.Protocol
module Server = Magis_serve.Server
module Client = Magis_serve.Client
module Loadgen = Magis_serve.Loadgen
open Magis

let run (env : Common.env) =
  Common.hr "Optimization service: admission, deadlines, cache reuse";
  let t0 = Unix.gettimeofday () in
  let tmp = Filename.get_temp_dir_name () in
  let tag = Printf.sprintf "magis-serve-bench-%d" (Unix.getpid ()) in
  let cfg =
    {
      Server.addr = P.Unix_sock (Filename.concat tmp (tag ^ ".sock"));
      workers = 2;
      queue_cap = 8;
      per_client_limit = 64;
      ckpt_dir = Filename.concat tmp tag;
      ckpt_every = 0.25;
      slice_iterations = 4;
      write_timeout = 5.0;
      verbose = false;
    }
  in
  let server = Server.create cfg in
  let daemon = Domain.spawn (fun () -> Server.run server) in
  let addr = cfg.addr in
  let iters = min env.iters 6 in
  let c = Client.connect addr in

  (* -------- Phase A: sequential, every counter deterministic -------- *)
  let result id =
    match
      Client.optimize c
        { (P.request ~id ~model:"unet") with max_iterations = iters }
    with
    | P.Result o -> o
    | r ->
        failwith
          (Printf.sprintf "serve bench: unexpected reply %s"
             (P.reply_to_string r))
  in
  let r1 = result "warm-0" in
  let h_cold = Client.health c in
  let r2 = result "warm-1" in
  let r3 = result "warm-2" in
  let h_warm = Client.health c in
  let repeat_identical = r1.o_peak = r2.o_peak && r2.o_peak = r3.o_peak in
  let cache_warm = h_warm.cache_hit_rate > h_cold.cache_hit_rate in
  Printf.printf
    "A1 identical requests: peak %.1f MB (from %.1f MB), identical %b, \
     cache hit rate %.2f -> %.2f\n"
    (float_of_int r1.o_peak /. 1e6)
    (float_of_int r1.o_initial_peak /. 1e6)
    repeat_identical h_cold.cache_hit_rate h_warm.cache_hit_rate;
  let deadline_rejects =
    match
      Client.optimize c
        {
          (P.request ~id:"dl" ~model:"unet") with
          max_iterations = iters;
          deadline_s = Some 0.0;
        }
    with
    | P.Error { kind = P.Deadline; _ } -> 1
    | _ -> 0
  in
  Printf.printf "A2 expired deadline: %d structured rejection(s)\n"
    deadline_rejects;
  (* Paused burst: dispatch is stopped, so admission outcomes depend
     only on the queue bound — exact counts, exact shed level. *)
  Client.send c P.Pause;
  let n_burst = cfg.queue_cap + 4 in
  let burst i =
    P.Optimize
      {
        (P.request ~id:(Printf.sprintf "burst-%d" i) ~model:"unet") with
        max_iterations = 3;
      }
  in
  for i = 0 to n_burst - 1 do
    Client.send c (burst i)
  done;
  Client.send c (burst 0);
  (* duplicate of a queued id *)
  Client.send c P.Health;
  let overloaded = ref 0
  and dup = ref 0
  and results = ref 0
  and health_at_burst = ref None in
  while !results < cfg.queue_cap do
    match Client.recv c with
    | P.Error { kind = P.Overloaded; _ } -> incr overloaded
    | P.Error { kind = P.Duplicate; _ } -> incr dup
    | P.Health_reply h ->
        (* snapshot taken while still paused, queue full; only now
           release the queue *)
        health_at_burst := Some h;
        Client.send c P.Resume
    | P.Result _ -> incr results
    | _ -> ()
  done;
  let hb =
    match !health_at_burst with
    | Some h -> h
    | None -> failwith "serve bench: no health reply during the burst"
  in
  Printf.printf
    "A3 paused burst of %d: %d queued+served, %d overloaded, %d duplicate; \
     paused snapshot: depth %d, shed level %d, status %s\n"
    (n_burst + 1) !results !overloaded !dup hb.queue_depth hb.shed_level
    hb.status;

  (* -------- Phase B: concurrent load ------------------------------- *)
  let rep =
    Loadgen.run_load ~addr ~clients:4 ~per_client:4
      ~models:Zoo.smoke_pair ~max_iterations:iters ()
  in
  Printf.printf
    "B  load 4x4: %d/%d completed, %d overloaded, %d errors, p50 %.0f ms, \
     p99 %.0f ms, cache hit rate %.2f\n"
    rep.completed rep.sent rep.overloaded rep.errors rep.p50_ms rep.p99_ms
    rep.cache_hit_rate;

  let h_final = Client.health c in
  Client.send c P.Shutdown;
  Client.close c;
  Domain.join daemon;
  let wall = Unix.gettimeofday () -. t0 in
  Printf.printf
    "daemon served %d, rejected %d, quarantined %d; drained cleanly in \
     %.1fs\n"
    h_final.served h_final.rejected h_final.quarantined wall;
  Common.write_stats_json env
    [
      ("a_repeat_identical", Json.Bool repeat_identical);
      ("a_best_peak", Json.Int r1.o_peak);
      ("a_initial_peak", Json.Int r1.o_initial_peak);
      ("a_cache_warm", Json.Bool cache_warm);
      ("a_deadline_rejects", Json.Int deadline_rejects);
      ("a_burst_sent", Json.Int (n_burst + 1));
      ("a_burst_overloaded", Json.Int !overloaded);
      ("a_burst_duplicate", Json.Int !dup);
      ("a_burst_results", Json.Int !results);
      ("a_paused_queue_depth", Json.Int hb.queue_depth);
      ("a_paused_shed_level", Json.Int hb.shed_level);
      ("a_paused_status", Json.Bool (hb.status = "paused"));
      ("served_total", Json.Int h_final.served);
      ("rejected_total", Json.Int h_final.rejected);
      ("quarantined_total", Json.Int h_final.quarantined);
      ("b_sent", Json.Int rep.sent);
      ("b_completed", Json.Int rep.completed);
      ("b_overloaded", Json.Int rep.overloaded);
      ("b_errors", Json.Int rep.errors);
      ("wall_b_p50_ms", Json.Float rep.p50_ms);
      ("wall_b_p99_ms", Json.Float rep.p99_ms);
      ("wall_b_cache_hit_rate", Json.Float rep.cache_hit_rate);
      ("wall_s", Json.Float wall);
      ("drained", Json.Bool true);
    ]
