(** Figure 11: latency/memory trade-off (Pareto) curves for ResNet-50,
    BERT-base, UNet and GPT-Neo.  Each series is a list of (memory ratio,
    latency overhead) points; MAGIS should trace the lowest curve. *)

open Magis

let ratios = [ 1.0; 0.8; 0.6; 0.5; 0.4; 0.3; 0.2 ]

let series_of_budget_runner ~name ~base run =
  let points =
    List.filter_map
      (fun r ->
        let budget =
          int_of_float (float_of_int base.Outcome.peak_mem *. r)
        in
        let o = run budget in
        if o.Outcome.feasible then
          Some (Common.ratio_of o ~base, Common.overhead_of o ~base)
        else None)
      ratios
  in
  (name, points)

let run (env : Common.env) =
  let workloads = Zoo.pareto_quad in
  List.iter
    (fun wname ->
      let w = Zoo.find wname in
      let g = Common.workload_graph env w in
      let base = Common.baseline env g in
      Common.hr
        (Printf.sprintf "Figure 11: latency & memory curve, %s (batch=%d)"
           w.name w.batch);
      let magis_series =
        ( "MAGIS",
          List.filter_map
            (fun r ->
              let o = Common.magis_latency env g ~mem_ratio:r in
              if o.Outcome.feasible then
                Some (Common.ratio_of o ~base, Common.overhead_of o ~base)
              else None)
            ratios )
      in
      let series =
        [
          magis_series;
          series_of_budget_runner ~name:"POFO" ~base (fun budget ->
              Pofo.run env.cache g ~budget);
          series_of_budget_runner ~name:"DTR" ~base (fun budget ->
              Dtr.run env.cache g ~budget);
          series_of_budget_runner ~name:"XLA" ~base (fun budget ->
              Xla.run env.cache g ~budget);
          ( "TVM",
            (let o = Fusion_compiler.run Fusion_compiler.Tvm env.cache g in
             [ (Common.ratio_of o ~base, Common.overhead_of o ~base) ]) );
          ( "TI",
            (let o =
               Fusion_compiler.run Fusion_compiler.Torch_inductor env.cache g
             in
             [ (Common.ratio_of o ~base, Common.overhead_of o ~base) ]) );
        ]
      in
      List.iter
        (fun (name, points) ->
          Printf.printf "%-6s" name;
          List.iter
            (fun (m, l) -> Printf.printf " (%.2f, %+.2f)" m l)
            points;
          print_newline ())
        series)
    workloads
