(** Shared plumbing for the benchmark harness: environment (scale, search
    budget), per-system runners and table formatting. *)

open Magis

type env = {
  cache : Op_cost.t;
  sim_cache : Sim_cache.t;
      (** shared across every search of a bench run, so ablation and
          budget sweeps replay previously simulated states for free *)
  scale : Zoo.scale;
  budget : float;  (** seconds of search per MAGIS optimization *)
  jobs : int;  (** worker domains per search (1 = serial) *)
  iters : int;  (** iteration cap per search (CI smoke uses a tight one) *)
  stats_json : string option;
      (** write each experiment's deterministic counters here as a flat
          JSON object — the artifact the CI perf-smoke job diffs
          against [bench/baselines/] with [scripts/compare_bench.sh] *)
  no_cheap_tier : bool;
      (** restrict the incremental-core experiment to the exact
          evaluation tier (skip the cheap-tier configuration) *)
}

let make_env ?(jobs = 1) ?(iters = max_int) ?stats_json
    ?(no_cheap_tier = false) ~full ~budget () =
  {
    cache = Op_cost.create Hardware.default;
    sim_cache = Sim_cache.create ();
    scale = (if full then Zoo.Full else Zoo.Quick);
    budget;
    jobs;
    iters;
    stats_json;
    no_cheap_tier;
  }

(** Write an experiment's counters as a one-object JSON file when the
    run asked for one ([--stats-json]).  Keys are emitted in the order
    given; values are limited to scalars so the file diffs cleanly.
    Timing-derived fields must be named [t_*], [wall*] or [speedup*] —
    {!scripts/compare_bench.sh} skips those; every other field is gated
    exactly against the checked-in baseline. *)
let write_stats_json env (fields : (string * Json.t) list) =
  match env.stats_json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Json.to_string (Json.Obj fields)));
      Printf.printf "[stats written to %s]\n%!" path

let search_config env =
  { Search.default_config with
    time_budget = env.budget;
    max_iterations = env.iters;
    jobs = env.jobs;
    sim_cache = Some env.sim_cache }

(** Unoptimized PyTorch reference for a workload. *)
let baseline env g = Naive.run env.cache g

let ratio_of o ~(base : Outcome.t) =
  float_of_int o.Outcome.peak_mem /. float_of_int base.peak_mem

let overhead_of o ~(base : Outcome.t) =
  (o.Outcome.latency -. base.latency) /. base.latency

(* ------------------------------------------------------------------ *)
(* System runners                                                      *)
(* ------------------------------------------------------------------ *)

(** MAGIS, memory-constrained-latency mode (Fig. 9): minimize memory with
    at most [overhead] extra latency. *)
let magis_memory env g ~overhead : Outcome.t =
  let r = Search.optimize_memory ~config:(search_config env) env.cache ~overhead g in
  let base = baseline env g in
  let feasible = r.best.latency <= base.latency *. (1.0 +. overhead) *. 1.0001 in
  {
    Outcome.system = "MAGIS";
    peak_mem = r.best.peak_mem;
    latency = r.best.latency;
    feasible;
  }

(** MAGIS, latency-under-memory mode (Fig. 10): minimize latency with peak
    memory at most [mem_ratio] of the unoptimized baseline. *)
let magis_latency env g ~mem_ratio : Outcome.t =
  let r = Search.optimize_latency ~config:(search_config env) env.cache ~mem_ratio g in
  let base = baseline env g in
  let limit = int_of_float (float_of_int base.peak_mem *. mem_ratio) in
  {
    Outcome.system = "MAGIS";
    peak_mem = r.best.peak_mem;
    latency = r.best.latency;
    feasible = r.best.peak_mem <= limit;
  }

(** All systems under a latency-overhead constraint; returns outcomes in a
    fixed order: MAGIS, POFO, DTR, XLA, TVM, TI. *)
let systems_memory env g ~overhead : Outcome.t list =
  let base = baseline env g in
  let lat_limit = base.latency *. (1.0 +. overhead) in
  [
    magis_memory env g ~overhead;
    Pofo.min_memory env.cache g ~lat_limit;
    Dtr.min_memory env.cache g ~lat_limit;
    Xla.min_memory env.cache g ~lat_limit;
    (let o = Fusion_compiler.run Fusion_compiler.Tvm env.cache g in
     { o with feasible = o.latency <= lat_limit });
    (let o = Fusion_compiler.run Fusion_compiler.Torch_inductor env.cache g in
     { o with feasible = o.latency <= lat_limit });
  ]

(** All systems under a peak-memory constraint. *)
let systems_latency env g ~mem_ratio : Outcome.t list =
  let base = baseline env g in
  let budget = int_of_float (float_of_int base.peak_mem *. mem_ratio) in
  [
    magis_latency env g ~mem_ratio;
    Pofo.run env.cache g ~budget;
    Dtr.run env.cache g ~budget;
    Xla.run env.cache g ~budget;
    Fusion_compiler.constrained Fusion_compiler.Tvm env.cache g ~mem_limit:budget;
    Fusion_compiler.constrained Fusion_compiler.Torch_inductor env.cache g
      ~mem_limit:budget;
  ]

(* ------------------------------------------------------------------ *)
(* Formatting                                                          *)
(* ------------------------------------------------------------------ *)

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let cell_ratio o ~base =
  if o.Outcome.feasible then Printf.sprintf "%5.2f" (ratio_of o ~base)
  else " OOM "

let cell_overhead o ~base =
  if o.Outcome.feasible then Printf.sprintf "%+6.1f%%" (100.0 *. overhead_of o ~base)
  else "FAILURE"

let print_matrix ~row_names ~col_names cells =
  Printf.printf "%-18s" "";
  List.iter (fun c -> Printf.printf "%14s" c) col_names;
  print_newline ();
  List.iteri
    (fun i name ->
      Printf.printf "%-18s" name;
      List.iter (fun c -> Printf.printf "%14s" c) (List.nth cells i);
      print_newline ())
    row_names

let workload_graph env (w : Zoo.workload) = w.build env.scale

(** The smallest Table-2 workload at the current scale, by operator
    count — the subject of the CI bench-smoke job and the parallel
    speedup experiment. *)
let smallest_workload env =
  List.map (fun (w : Zoo.workload) -> (w, workload_graph env w)) Zoo.all
  |> List.sort (fun ((wa : Zoo.workload), a) ((wb : Zoo.workload), b) ->
         compare (Graph.n_nodes a, wa.name) (Graph.n_nodes b, wb.name))
  |> List.hd

(** Workloads used by the headline experiments; the very large LMs are
    optionally excluded when iterating quickly. *)
let bench_workloads ?(names = []) () =
  match names with
  | [] -> Zoo.all
  | _ -> List.map Zoo.find names
