(** Benchmark harness entry point: regenerates every table and figure of
    the paper's evaluation section (see DESIGN.md §3 for the index).

    Usage: [dune exec bench/main.exe -- [EXPERIMENTS] [--full] [--budget S]]

    By default runs every experiment at Quick scale (depth-reduced models,
    short search budgets) so the suite completes in minutes; [--full] uses
    the paper-scale model configurations. *)

let experiments : (string * (Common.env -> unit)) list =
  [
    ("table2", Table2.run);
    ("fig9", Fig9.run);
    ("fig10", Fig10.run);
    ("fig11", Fig11.run);
    ("fig12", Fig12.run);
    ("fig13", Fig13.run);
    ("fig14", Fig14.run);
    ("fig15", Fig15.run);
    ("fig16", Fig16.run);
    ("micro", Micro.run);
    ("design", Design.run);
    ("spatial", Spatial_bench.run);
    ("par", Par_bench.run);
    ("incr", Incr_bench.run);
    ("bounds", Bounds_bench.run);
    ("resilience", Resilience_bench.run);
    ("serve", Serve_bench.run);
    ("frontier", Frontier_bench.run);
  ]

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc contents)

let run_selected names full budget jobs iters stats_json no_cheap_tier trace
    metrics =
  if trace <> None then Magis.Trace.enable ();
  if metrics <> None then Magis.Metrics.set_enabled true;
  let env =
    Common.make_env ~jobs ~iters ?stats_json ~no_cheap_tier ~full ~budget ()
  in
  let selected =
    match names with
    | [] | [ "all" ] -> experiments
    | names ->
        List.map
          (fun n ->
            match List.assoc_opt n experiments with
            | Some f -> (n, f)
            | None ->
                Fmt.failwith "unknown experiment %s (expected %s or all)" n
                  (String.concat ", " (List.map fst experiments)))
          names
  in
  List.iter
    (fun (name, f) ->
      let t0 = Unix.gettimeofday () in
      Magis.Trace.with_span ~cat:"bench" name (fun () -> f env);
      Printf.printf "[%s done in %.1fs]\n%!" name (Unix.gettimeofday () -. t0))
    selected;
  (match trace with
  | None -> ()
  | Some path ->
      Magis.Trace.disable ();
      write_file path (Magis.Trace.to_chrome ());
      Printf.printf "[trace written to %s]\n" path);
  match metrics with
  | None -> ()
  | Some path ->
      Magis.Metrics.set_enabled false;
      write_file path (Magis.Metrics.to_json ());
      Printf.printf "[metrics written to %s]\n" path

open Cmdliner

let names =
  let doc = "Experiments to run (table2, fig9..fig16, micro, all)." in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let full =
  let doc = "Use the paper-scale model configurations (slow)." in
  Arg.(value & flag & info [ "full" ] ~doc)

let budget =
  let doc = "Search time budget per MAGIS optimization, in seconds." in
  Arg.(value & opt float 5.0 & info [ "budget" ] ~doc)

let jobs =
  let doc = "Worker domains per search (1 = serial legacy path)." in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~doc)

let iters =
  let doc =
    "Iteration cap per search (in addition to the time budget); the CI \
     bench-smoke job uses a tight cap."
  in
  Arg.(value & opt int max_int & info [ "iters" ] ~doc)

let stats_json =
  let doc =
    "Write each experiment's deterministic counters to this file as a flat \
     JSON object (the CI perf-smoke artifact; see scripts/compare_bench.sh)."
  in
  Arg.(value & opt (some string) None & info [ "stats-json" ] ~doc)

let no_cheap_tier =
  let doc =
    "Restrict the incr experiment to the exact evaluation tier (skip the \
     cheap-tier configuration)."
  in
  Arg.(value & flag & info [ "no-cheap-tier" ] ~doc)

let trace =
  let doc = "Enable tracing; write a Chrome trace-event file here at exit." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc)

let metrics =
  let doc = "Enable metrics; write the registry snapshot (JSON) here at exit." in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~doc)

let cmd =
  let doc = "Regenerate the MAGIS paper's evaluation tables and figures" in
  Cmd.v
    (Cmd.info "magis-bench" ~doc)
    Term.(const run_selected $ names $ full $ budget $ jobs $ iters
          $ stats_json $ no_cheap_tier $ trace $ metrics)

let () = exit (Cmd.eval cmd)
