(** Resilience overhead: A-B runs of the same iteration-capped search
    measuring what the machinery costs when nothing goes wrong —
    supervised expansion vs the legacy path, aggressive periodic
    checkpointing, and a run absorbing transient injected faults.
    Every configuration must return the bit-identical best state; the
    table records the wall-clock price of the guarantees. *)

open Magis

let run (env : Common.env) =
  let w, g = Common.smallest_workload env in
  let iters = min env.iters 30 in
  Common.hr
    (Printf.sprintf "Resilience overhead: %s (%d ops), %d iterations" w.name
       (Graph.n_nodes g) iters);
  let run_one ~label cfg =
    let config =
      cfg
        { (Common.search_config env) with
          time_budget = 1e9; max_iterations = iters;
          sim_cache = Some (Sim_cache.create ()) }
    in
    let t0 = Unix.gettimeofday () in
    let r = Search.optimize_memory ~config env.cache ~overhead:0.10 g in
    (label, r, Unix.gettimeofday () -. t0)
  in
  let legacy =
    run_one ~label:"supervise=off (legacy)" (fun c ->
        { c with Search.supervise = false })
  in
  let supervised = run_one ~label:"supervise=on (default)" (fun c -> c) in
  let path = Filename.temp_file "magis_bench" ".ckpt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let checkpointed =
    run_one ~label:"checkpoint every 50ms" (fun c ->
        { c with
          Search.checkpoint =
            Some
              { Search.ckpt_path = path; ckpt_every = 0.05;
                ckpt_resume = false } })
  in
  let ckpt_bytes = (Unix.stat path).st_size in
  (* transient faults at the simulator site, planted past the
     unsupervised prologue (baseline simulation + initial state) *)
  Fault.observe ();
  let _ = run_one ~label:"observe" (fun c -> c) in
  let v = Fault.visits "simulator" in
  Fault.disarm ();
  Fault.arm
    (Fault.seeded ~seed:7 ~lo:(max 4 (v / 4)) ~hi:(max 5 (3 * v / 4))
       [ ("simulator", Fault.Exception); ("simulator", Fault.Exception);
         ("simulator", Fault.Exception) ]);
  let faulted = run_one ~label:"3 transient faults" (fun c -> c) in
  let fired = List.length (Fault.fired ()) in
  Fault.disarm ();
  let runs = [ legacy; supervised; checkpointed; faulted ] in
  let _, base, base_wall = List.hd runs in
  Printf.printf "%-24s %9s %9s %10s %8s %12s\n" "" "Wall(s)" "vs legacy"
    "Peak(MB)" "Retried" "Quarantined";
  List.iter
    (fun (label, (r : Search.result), wall) ->
      Printf.printf "%-24s %9.2f %8.1f%% %10.1f %8d %12d\n" label wall
        (100.0 *. (wall -. base_wall) /. base_wall)
        (float_of_int r.best.peak_mem /. 1e6)
        r.stats.n_retried r.stats.n_quarantined)
    runs;
  Printf.printf
    "checkpoints: %d written, last snapshot %.1f KB; faults fired: %d\n"
    (let _, r, _ = checkpointed in
     r.stats.n_checkpoints)
    (float_of_int ckpt_bytes /. 1e3)
    fired;
  List.iter
    (fun (label, (r : Search.result), _) ->
      if
        r.best.peak_mem <> base.best.peak_mem
        || r.best.latency <> base.best.latency
      then
        Printf.printf "DIVERGED: %s returned %.1f MB / %.3f ms\n" label
          (float_of_int r.best.peak_mem /. 1e6)
          (r.best.latency *. 1e3))
    runs;
  Printf.printf "identical best across all configurations: %b\n"
    (List.for_all
       (fun (_, (r : Search.result), _) ->
         r.best.peak_mem = base.best.peak_mem
         && r.best.latency = base.best.latency)
       runs)
