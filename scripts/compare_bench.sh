#!/usr/bin/env bash
# Diff two bench stats-JSON files (the CI perf-smoke gate).
#
#   bash scripts/compare_bench.sh BASELINE.json CURRENT.json [RTOL]
#
# Both files are flat JSON objects of scalar counters, as written by
# `bench/main.exe <experiment> --stats-json FILE`.  The gate:
#
#   - keys named t_*, wall* or speedup* carry wall-clock-derived values
#     and are skipped (reported, never gated);
#   - integer and boolean values must match exactly — these are the
#     deterministic search/evaluation counters;
#   - other float values must agree within RTOL (default 0.05);
#   - a baseline key missing from CURRENT fails (a counter silently
#     disappearing is a regression of the instrumentation itself);
#   - extra keys in CURRENT are ignored (new counters land first, the
#     baseline catches up in the same PR or the next).
#
# Exits 0 when the gate passes, 1 with a per-key report when it fails.
set -u

if [ "$#" -lt 2 ] || [ "$#" -gt 3 ]; then
    echo "usage: $0 BASELINE.json CURRENT.json [RTOL]" >&2
    exit 2
fi

baseline=$1
current=$2
rtol=${3:-0.05}

for f in "$baseline" "$current"; do
    if [ ! -f "$f" ]; then
        echo "compare_bench: no such file: $f" >&2
        exit 2
    fi
done

python3 - "$baseline" "$current" "$rtol" <<'PY'
import json
import sys

baseline_path, current_path, rtol_s = sys.argv[1], sys.argv[2], sys.argv[3]
rtol = float(rtol_s)

with open(baseline_path) as f:
    baseline = json.load(f)
with open(current_path) as f:
    current = json.load(f)

SKIP_PREFIXES = ("t_", "wall", "speedup")


def skipped(key):
    return (
        key.startswith(SKIP_PREFIXES)
        or "_t_" in key
        or "_wall" in key
        or "_speedup" in key
    )


failures = []
checked = 0
for key, want in baseline.items():
    if skipped(key):
        continue
    if key not in current:
        failures.append(f"{key}: missing from {current_path} (baseline {want!r})")
        continue
    got = current[key]
    checked += 1
    if isinstance(want, bool) or isinstance(got, bool):
        if bool(want) != bool(got):
            failures.append(f"{key}: {got!r} != baseline {want!r}")
    elif isinstance(want, int) and isinstance(got, int):
        if want != got:
            failures.append(f"{key}: {got} != baseline {want}")
    elif isinstance(want, (int, float)) and isinstance(got, (int, float)):
        denom = max(abs(float(want)), 1e-12)
        if abs(float(got) - float(want)) / denom > rtol:
            failures.append(
                f"{key}: {got} outside rtol {rtol} of baseline {want}"
            )
    else:
        if want != got:
            failures.append(f"{key}: {got!r} != baseline {want!r}")

if failures:
    print(f"compare_bench: {len(failures)} counter(s) regressed "
          f"({checked} gated):")
    for line in failures:
        print(f"  {line}")
    sys.exit(1)

print(f"compare_bench: OK ({checked} counters gated, "
      f"{len(baseline) - checked} timing keys skipped)")
PY
