#!/usr/bin/env bash
# Style check for the repository's OCaml sources (the CI "format" job).
#
# ocamlformat is not part of the pinned toolchain, so this script enforces
# the invariants the codebase already follows and that keep diffs from
# churning: no tabs, no trailing whitespace, no CRLF line endings, and a
# final newline in every source file.  Run it locally with:
#
#   bash scripts/check_style.sh
#
# It exits non-zero and prints the offending file:line pairs on drift.
set -u

cd "$(dirname "$0")/.."

# markdown is excluded: trailing double-spaces are meaningful there, and
# PAPERS.md / SNIPPETS.md are reference material, not code
files=$(git ls-files -- '*.ml' '*.mli' 'dune' '*/dune' 'dune-project' '*.sh' '*.yml')

status=0

fail() {
  echo "style: $1"
  status=1
}

# 1. no tab characters
hits=$(grep -nP '\t' $files 2>/dev/null)
if [ -n "$hits" ]; then
  fail "tab characters found:"
  echo "$hits" | head -20
fi

# 2. no trailing whitespace
hits=$(grep -nE ' +$' $files 2>/dev/null)
if [ -n "$hits" ]; then
  fail "trailing whitespace found:"
  echo "$hits" | head -20
fi

# 3. no CRLF line endings
hits=$(grep -lP '\r$' $files 2>/dev/null)
if [ -n "$hits" ]; then
  fail "CRLF line endings found:"
  echo "$hits" | head -20
fi

# 4. every file ends with a newline
for f in $files; do
  if [ -s "$f" ] && [ -n "$(tail -c 1 "$f")" ]; then
    fail "$f: missing final newline"
  fi
done

# 5. every library module has an explicit interface.  lib/core/magis.ml is
# the facade (pure re-exports; an .mli would just duplicate it).
for f in $(git ls-files -- 'lib/*.ml' 'lib/**/*.ml'); do
  case "$f" in
    lib/core/magis.ml) continue ;;
  esac
  if [ ! -f "${f}i" ]; then
    fail "$f: library module without a corresponding .mli"
  fi
done

# 6. lib/obs is the bottom of the dependency stack: every other library
# may instrument through it, so it must never depend back on one of them
# (only the compiler stdlib and unix).
hits=$(grep -nE 'magis_[a-z]+' lib/obs/dune 2>/dev/null | grep -v 'name magis_obs')
if [ -n "$hits" ]; then
  fail "lib/obs/dune depends on another magis library (layering violation):"
  echo "$hits"
fi

# 7. every rewrite rule declares its soundness status: each rule record
# in the two rule modules must carry a spec field (Sound templates or an
# explicit Waiver) for the Rule_sound verifier to discharge.  Counting
# rule names against spec fields keeps the check syntactic but exact:
# both appear once per rule record.
for f in lib/rules/taso_rules.ml lib/rules/sched_rules.ml; do
  names=$(grep -cE '^ *name = "' "$f")
  specs=$(grep -cE '^ *spec =' "$f")
  if [ "$names" != "$specs" ]; then
    fail "$f: $names rule(s) but $specs spec declaration(s) — every rule must declare Sound templates or a Waiver"
  fi
done

if [ "$status" -eq 0 ]; then
  echo "style: clean ($(echo "$files" | wc -w) files)"
fi
exit "$status"
